#include "util/moving_average.hpp"

#include <stdexcept>

namespace coca::util {

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("MovingAverage: window must be > 0");
}

double MovingAverage::push(double x) {
  buffer_.push_back(x);
  sum_ += x;
  if (buffer_.size() > window_) {
    sum_ -= buffer_.front();
    buffer_.pop_front();
  }
  return value();
}

double MovingAverage::value() const {
  if (buffer_.empty()) return 0.0;
  return sum_ / static_cast<double>(buffer_.size());
}

std::vector<double> moving_average_series(std::span<const double> series,
                                          std::size_t window) {
  MovingAverage ma(window);
  std::vector<double> out;
  out.reserve(series.size());
  for (double x : series) out.push_back(ma.push(x));
  return out;
}

std::vector<double> running_average_series(std::span<const double> series) {
  std::vector<double> out;
  out.reserve(series.size());
  double sum = 0.0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    sum += series[t];
    out.push_back(sum / static_cast<double>(t + 1));
  }
  return out;
}

}  // namespace coca::util
