#pragma once
// Scalar solvers shared by the optimization layer: bisection root-finding on
// monotone functions and golden-section minimization of unimodal functions.
// These are the only numeric primitives the whole optimization stack needs —
// every dual problem in this repository reduces to a monotone scalar equation.

#include <functional>

namespace coca::util {

struct BisectionResult {
  double x = 0.0;       ///< located point
  double fx = 0.0;      ///< f(x) at the located point
  int iterations = 0;   ///< iterations used
  bool converged = false;
};

struct BisectionOptions {
  double x_tol = 1e-10;    ///< absolute tolerance on the bracket width
  double f_tol = 1e-12;    ///< stop early if |f(x)| falls below this
  int max_iterations = 200;
};

/// Find x in [lo, hi] with f(x) ~= 0 for a monotone (either direction) f.
/// Requires f(lo) and f(hi) to bracket zero; if both have the same sign the
/// closer endpoint is returned with converged=false.
BisectionResult bisect(const std::function<double(double)>& f, double lo,
                       double hi, const BisectionOptions& options = {});

/// Expand [lo, hi] upward (geometrically) until f changes sign or the limit
/// is reached, then bisect.  Used when the dual variable's upper bound is not
/// known a priori.
BisectionResult bisect_with_expansion(const std::function<double(double)>& f,
                                      double lo, double hi_initial,
                                      double hi_limit,
                                      const BisectionOptions& options = {});

struct MinimizeResult {
  double x = 0.0;
  double fx = 0.0;
  int iterations = 0;
};

/// Golden-section search for the minimizer of a unimodal f on [lo, hi].
MinimizeResult golden_section_minimize(const std::function<double(double)>& f,
                                       double lo, double hi,
                                       double x_tol = 1e-9,
                                       int max_iterations = 200);

}  // namespace coca::util
