#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace coca::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double mean_of(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  return sum_of(samples) / static_cast<double>(samples.size());
}

double sum_of(std::span<const double> samples) {
  double acc = 0.0;
  for (double x : samples) acc += x;
  return acc;
}

double correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  const double denom = std::sqrt(saa * sbb);
  if (denom <= 0.0) return 0.0;
  return sab / denom;
}

double autocorrelation(std::span<const double> series, std::size_t lag) {
  if (series.size() <= lag + 1) return 0.0;
  return correlation(series.subspan(0, series.size() - lag),
                     series.subspan(lag));
}

double max_relative_error(std::span<const double> a, std::span<const double> b,
                          double eps) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_relative_error: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(std::abs(b[i]), eps);
    worst = std::max(worst, std::abs(a[i] - b[i]) / denom);
  }
  return worst;
}

}  // namespace coca::util
