#pragma once
// Minimal CSV reading/writing: used to export figure series from the bench
// binaries and to let users feed real traces into the workload/energy layers.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace coca::util {

/// Stream-backed CSV writer.  Does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write a header row from column names.
  void header(const std::vector<std::string>& columns);
  /// Write a data row of doubles (formatted with up to 10 significant digits).
  void row(const std::vector<double>& values);
  /// Write a row with a leading string label followed by doubles.
  void row(std::string_view label, const std::vector<double>& values);

 private:
  std::ostream* out_;
};

/// One parsed CSV table: column names plus row-major numeric cells.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;

  /// Index of a named column; throws std::out_of_range if absent.
  std::size_t column_index(std::string_view name) const;
  /// Extract a whole column by name.
  std::vector<double> column(std::string_view name) const;
};

/// Parse numeric CSV text with a header row.  Cells that fail to parse as
/// double become NaN.  Throws std::invalid_argument on ragged rows.
CsvTable parse_csv(std::string_view text);

/// Read and parse a CSV file; throws std::runtime_error if unreadable.
CsvTable read_csv_file(const std::string& path);

}  // namespace coca::util
