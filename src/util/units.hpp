#pragma once
// Zero-overhead dimensional types for the quantities COCA's model mixes on
// every slot: power [kW], energy [kWh], money [$], prices [$/kWh], workload
// rates [req/s], carbon mass [kgCO2] and slot time [h].
//
// The classic failure mode of carbon-accounting code is a silent kW-vs-kWh or
// $-vs-$/kWh mixup — every term in P3 (Eq. 16) is a bare double.  A
// Quantity<Dim> carries its dimension in the type: adding a KiloWatts to a
// KiloWattHours does not compile, while the legal conversions are expressed
// by ordinary arithmetic,
//     KiloWatts * Hours        -> KiloWattHours
//     KiloWattHours * UsdPerKwh -> Usd
//     KiloWattHours * KgCo2PerKwh -> KgCo2
// and a same-dimension ratio collapses back to a plain double.
//
// Design rules:
//  * a Quantity is exactly one double (static_assert'ed below); every
//    operation is constexpr and inlines to the raw arithmetic — there is no
//    runtime overhead, the checking happens entirely in the type system;
//  * construction from double is explicit and the raw value only comes back
//    out through .value() — the escape hatch for solver-math boundaries
//    (GSD / ladder / dual-decomposition inner loops stay raw-double fast);
//  * the Lyapunov weights V and q are intentionally *not* quantities: in the
//    drift-plus-penalty objective V*g + q*y they act as unit-bridging shadow
//    prices (q multiplies kWh yet is commensurable with V*$), which is
//    solver math, not physics — type the inputs and outputs, not the knobs.

#include <compare>
#include <type_traits>

namespace coca::units {

/// Integer exponents over the five base axes of the model:
/// energy [kWh], time [h], money [$], workload rate [req/s], carbon [kgCO2].
/// (Workload rate is an atomic axis: the model never integrates req/s over
/// slot time in the typed layer — job counts live in the DES layer, raw.)
template <int EnergyExp, int TimeExp, int MoneyExp, int RateExp, int MassExp>
struct Dim {
  static constexpr int energy = EnergyExp;
  static constexpr int time = TimeExp;
  static constexpr int money = MoneyExp;
  static constexpr int rate = RateExp;
  static constexpr int mass = MassExp;
};

using ScalarDim = Dim<0, 0, 0, 0, 0>;

namespace detail {

template <class A, class B>
using MulDim = Dim<A::energy + B::energy, A::time + B::time,
                   A::money + B::money, A::rate + B::rate, A::mass + B::mass>;

template <class A, class B>
using DivDim = Dim<A::energy - B::energy, A::time - B::time,
                   A::money - B::money, A::rate - B::rate, A::mass - B::mass>;

}  // namespace detail

template <class D>
class Quantity {
 public:
  using dimension = D;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// The raw magnitude — the one sanctioned escape hatch.  Use at solver-math
  /// boundaries and I/O, not to dodge a dimension error.
  [[nodiscard]] constexpr double value() const { return v_; }

  // Same-dimension linear arithmetic.  Mixed dimensions have no overload and
  // fail to compile — that is the point.
  constexpr Quantity operator+(Quantity o) const { return Quantity{v_ + o.v_}; }
  constexpr Quantity operator-(Quantity o) const { return Quantity{v_ - o.v_}; }
  constexpr Quantity operator-() const { return Quantity{-v_}; }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }

  // Dimensionless scaling (e.g. PUE * it_power, alpha * offsite).
  constexpr Quantity operator*(double s) const { return Quantity{v_ * s}; }
  constexpr Quantity operator/(double s) const { return Quantity{v_ / s}; }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }
  friend constexpr Quantity operator*(double s, Quantity q) {
    return Quantity{s * q.v_};
  }

  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  double v_ = 0.0;
};

/// Dimension-combining multiply; a product that lands on ScalarDim collapses
/// to plain double so dimensionless ratios never wrap.
template <class D1, class D2>
constexpr auto operator*(Quantity<D1> a, Quantity<D2> b) {
  using R = detail::MulDim<D1, D2>;
  if constexpr (std::is_same_v<R, ScalarDim>) {
    return a.value() * b.value();
  } else {
    return Quantity<R>{a.value() * b.value()};
  }
}

template <class D1, class D2>
constexpr auto operator/(Quantity<D1> a, Quantity<D2> b) {
  using R = detail::DivDim<D1, D2>;
  if constexpr (std::is_same_v<R, ScalarDim>) {
    return a.value() / b.value();
  } else {
    return Quantity<R>{a.value() / b.value()};
  }
}

/// double / Quantity inverts the dimension ($1 / price = kWh per dollar).
template <class D>
constexpr auto operator/(double s, Quantity<D> q) {
  return Quantity<detail::DivDim<ScalarDim, D>>{s / q.value()};
}

// ---------------------------------------------------------------------------
// The named quantities of COCA's model.

using Hours = Quantity<Dim<0, 1, 0, 0, 0>>;            ///< slot time
using KiloWattHours = Quantity<Dim<1, 0, 0, 0, 0>>;    ///< energy y(t), f(t)
using KiloWatts = Quantity<Dim<1, -1, 0, 0, 0>>;       ///< power p, r(t)
using Usd = Quantity<Dim<0, 0, 1, 0, 0>>;              ///< cost e(t), g(t)
using UsdPerKwh = Quantity<Dim<-1, 0, 1, 0, 0>>;       ///< price w(t)
using UsdPerHour = Quantity<Dim<0, -1, 1, 0, 0>>;      ///< delay-cost rate
using RequestsPerSec = Quantity<Dim<0, 0, 0, 1, 0>>;   ///< workload lambda
using KgCo2 = Quantity<Dim<0, 0, 0, 0, 1>>;            ///< emitted carbon
using KgCo2PerKwh = Quantity<Dim<-1, 0, 0, 0, 1>>;     ///< grid intensity

// Factories — the readable way to lift a raw double into the typed layer.
constexpr Hours hours(double h) { return Hours{h}; }
constexpr Hours seconds(double s) { return Hours{s / 3600.0}; }
constexpr KiloWattHours kwh(double e) { return KiloWattHours{e}; }
constexpr KiloWatts kw(double p) { return KiloWatts{p}; }
constexpr Usd usd(double d) { return Usd{d}; }
constexpr UsdPerKwh usd_per_kwh(double w) { return UsdPerKwh{w}; }
constexpr RequestsPerSec rps(double l) { return RequestsPerSec{l}; }
constexpr KgCo2 kg_co2(double m) { return KgCo2{m}; }
constexpr KgCo2PerKwh kg_co2_per_kwh(double i) { return KgCo2PerKwh{i}; }

inline namespace literals {
constexpr KiloWatts operator""_kw(long double v) {
  return KiloWatts{static_cast<double>(v)};
}
constexpr KiloWatts operator""_kw(unsigned long long v) {
  return KiloWatts{static_cast<double>(v)};
}
constexpr KiloWattHours operator""_kwh(long double v) {
  return KiloWattHours{static_cast<double>(v)};
}
constexpr KiloWattHours operator""_kwh(unsigned long long v) {
  return KiloWattHours{static_cast<double>(v)};
}
constexpr Usd operator""_usd(long double v) {
  return Usd{static_cast<double>(v)};
}
constexpr Usd operator""_usd(unsigned long long v) {
  return Usd{static_cast<double>(v)};
}
constexpr Hours operator""_h(long double v) {
  return Hours{static_cast<double>(v)};
}
constexpr Hours operator""_h(unsigned long long v) {
  return Hours{static_cast<double>(v)};
}
}  // namespace literals

// Quantity-aware helpers (std::max/min/abs would strip the type).
template <class D>
constexpr Quantity<D> max(Quantity<D> a, Quantity<D> b) {
  return a.value() >= b.value() ? a : b;
}
template <class D>
constexpr Quantity<D> min(Quantity<D> a, Quantity<D> b) {
  return a.value() <= b.value() ? a : b;
}
template <class D>
constexpr Quantity<D> abs(Quantity<D> a) {
  return a.value() < 0.0 ? -a : a;
}
/// The [.]^+ clamp that appears in Eq. 3 and Eq. 17.
template <class D>
constexpr Quantity<D> positive_part(Quantity<D> a) {
  return a.value() > 0.0 ? a : Quantity<D>{};
}

// ---------------------------------------------------------------------------
// Compile-time misuse detection — exported so tests (and reviewers) can
// assert that the illegal mixes stay illegal.

template <class A, class B, class = void>
struct is_addable : std::false_type {};
template <class A, class B>
struct is_addable<A, B,
                  std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};
template <class A, class B>
inline constexpr bool is_addable_v = is_addable<A, B>::value;

template <class From, class To>
inline constexpr bool is_assignable_quantity_v =
    std::is_assignable_v<To&, From>;

// The library's own contract, checked where it is defined:
static_assert(sizeof(KiloWatts) == sizeof(double),
              "Quantity must be exactly one double (zero overhead)");
static_assert(std::is_trivially_copyable_v<KiloWattHours>,
              "Quantity must stay trivially copyable");
static_assert(!is_addable_v<KiloWatts, KiloWattHours>,
              "kW + kWh must not compile");
static_assert(!is_addable_v<Usd, UsdPerKwh>, "$ + $/kWh must not compile");
static_assert(!is_assignable_quantity_v<KiloWatts, KiloWattHours>,
              "kW must not convert to kWh");
static_assert(!std::is_convertible_v<double, KiloWatts>,
              "raw doubles must be lifted explicitly");
static_assert(std::is_same_v<decltype(kw(1.0) * hours(1.0)), KiloWattHours>,
              "kW * h -> kWh");
static_assert(std::is_same_v<decltype(kwh(1.0) * usd_per_kwh(1.0)), Usd>,
              "kWh * $/kWh -> $");
static_assert(std::is_same_v<decltype(kwh(1.0) * kg_co2_per_kwh(1.0)), KgCo2>,
              "kWh * kgCO2/kWh -> kgCO2");
static_assert(std::is_same_v<decltype(kwh(2.0) / kwh(1.0)), double>,
              "same-dimension ratio collapses to double");
static_assert(std::is_same_v<decltype(kwh(1.0) / hours(1.0)), KiloWatts>,
              "kWh / h -> kW");

}  // namespace coca::units
