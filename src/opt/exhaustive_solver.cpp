#include "opt/exhaustive_solver.hpp"

#include <stdexcept>
#include <vector>

namespace coca::opt {

std::size_t ExhaustiveSolver::configuration_count(const dc::Fleet& fleet) {
  std::size_t total = 1;
  for (const auto& group : fleet.groups()) {
    // Per group: off (active = 0) plus level x count choices.
    const std::size_t options =
        1 + group.spec().level_count() * group.server_count();
    if (total > (~std::size_t{0}) / options) return ~std::size_t{0};
    total *= options;
  }
  return total;
}

// OBS-EXEMPT(test-only brute-force oracle, never on a production slot path)
SlotSolution ExhaustiveSolver::solve(const dc::Fleet& fleet,
                                     const SlotInput& input,
                                     const SlotWeights& weights) const {
  if (configuration_count(fleet) > config_.max_configurations) {
    throw std::invalid_argument(
        "ExhaustiveSolver: configuration space too large");
  }

  const std::size_t groups = fleet.group_count();
  SlotSolution best;
  best.alloc = all_off(fleet);
  best.outcome = evaluate(fleet, best.alloc, input, weights);
  best.feasible = best.outcome.feasible;

  auto options_for = [&](std::size_t g) {
    return 1 + fleet.group(g).spec().level_count() *
                   fleet.group(g).server_count();
  };
  auto decode = [&](dc::Allocation& alloc, std::size_t g, std::size_t opt) {
    if (opt == 0) {
      alloc[g].level = 0;
      alloc[g].active = 0.0;
      return;
    }
    const std::size_t idx = opt - 1;
    const std::size_t levels = fleet.group(g).spec().level_count();
    alloc[g].level = idx % levels;
    alloc[g].active = static_cast<double>(idx / levels + 1);
  };

  std::vector<std::size_t> odometer(groups, 0);
  dc::Allocation candidate(groups);
  for (;;) {
    for (std::size_t g = 0; g < groups; ++g) decode(candidate, g, odometer[g]);
    const auto balanced = balance_loads(fleet, candidate, input, weights);
    if (balanced.feasible &&
        balanced.outcome.objective < best.outcome.objective) {
      best.alloc = candidate;
      best.outcome = balanced.outcome;
      best.regime = balanced.regime;
      best.effective_price = balanced.effective_price;
      best.feasible = true;
    }
    std::size_t g = 0;
    while (g < groups && ++odometer[g] == options_for(g)) {
      odometer[g] = 0;
      ++g;
    }
    if (g == groups) break;
  }
  return best;
}

}  // namespace coca::opt
