#pragma once
// Fast near-exact solver for the per-slot problem P3 (capacity provisioning
// + load distribution), based on the continuous-server-count relaxation.
//
// For a group at speed level k facing effective brown-energy price mu, the
// jointly optimal per-server operating load has the closed form
//     a*(k) = clamp( s_k * theta/(1+theta), gamma*s_k ),
//     theta = sqrt( mu * pue * p_s / (V*beta) ),
// at which the group serves workload at a *constant* marginal cost per unit
// until its server count saturates.  Parameterizing every group's best
// response by a common workload price nu turns provisioning into a scalar
// market-clearing problem: a bisection on nu activates groups in merit order
// and sizes the marginal group.  The renewable kink is handled by an outer
// bisection on mu exactly as in the load balancer.  With ~1000 servers per
// group the integrality gap of the relaxation is negligible; an optional
// local-search polish tightens the remaining slack.
//
// The ladder solver is the default per-slot engine for year-long simulations;
// GSD (the paper's distributed sampler) and the exhaustive solver validate it.

#include <optional>

#include "opt/load_balancer.hpp"
#include "opt/load_lp.hpp"
#include "opt/slot_problem.hpp"

namespace coca::opt {

struct LadderConfig {
  /// Round active counts up to integers after the relaxation.
  bool integer_counts = true;
  /// Local-search passes over (group, level, count-step) moves; 0 disables.
  int polish_passes = 0;
  /// Count step for polish moves, as a fraction of the group size.
  double polish_count_step = 0.05;
};

struct SlotSolution {
  dc::Allocation alloc;
  SlotOutcome outcome;
  PowerRegime regime = PowerRegime::kGridDraw;
  double effective_price = 0.0;  ///< mu at the solution
  bool feasible = false;
};

class LadderSolver {
 public:
  explicit LadderSolver(LadderConfig config = {}) : config_(config) {}

  /// Solve P3 for one slot.  Returns an infeasible solution (objective +inf)
  /// if even the full fleet at top speed cannot serve lambda under gamma.
  /// An optional LoadLpContext (built for the *same* fleet) carries the
  /// load-LP caches across repeated solves — the capped solvers reuse one
  /// across their multiplier bisections; when omitted a solve-local context
  /// is used.  Results are bit-identical either way (kBitExact policy).
  SlotSolution solve(const dc::Fleet& fleet, const SlotInput& input,
                     const SlotWeights& weights,
                     LoadLpContext* lp = nullptr) const;

  const LadderConfig& config() const { return config_; }

 private:
  /// Provision + balance with a fixed linear energy price mu (no kink).
  SlotSolution solve_linear(const dc::Fleet& fleet, const SlotInput& input,
                            const SlotWeights& weights, double mu,
                            LoadLpContext& lp) const;

  /// One local-search polish pass; returns true if it improved the solution.
  /// The (group, level, count-step) grid is batch-evaluated through the
  /// context, then the sequential adopt/skip logic is replayed — candidate
  /// solves are independent of mid-pass adoptions (balance overwrites
  /// loads), so the result is bit-identical to solve-then-adopt.
  bool polish(const dc::Fleet& fleet, const SlotInput& input,
              const SlotWeights& weights, SlotSolution& solution,
              LoadLpContext& lp) const;

  LadderConfig config_;
};

}  // namespace coca::opt
