#pragma once
// Budget-capped single-slot solver: minimize the slot cost g(t) subject to a
// cap on the slot's brown energy y(t) <= cap.
//
// Used by the PerfectHP baseline (hourly carbon budgets, Sec. 5.2.2) and the
// offline benchmarks.  Solved by Lagrangian relaxation: the cap's multiplier
// plays exactly the role of COCA's queue length q, so each evaluation reuses
// the ladder solver with weights (V=V, q=mu); a scalar bisection finds the
// smallest multiplier meeting the cap (complementary slackness).  When even
// the most power-frugal feasible decision exceeds the cap, the cap is
// dropped — the paper's PerfectHP does the same ("if no feasible solution
// exists ... minimize the cost without considering the hourly carbon
// budget").

#include "opt/ladder_solver.hpp"

namespace coca::opt {

struct CappedSlotResult {
  SlotSolution solution;
  double multiplier = 0.0;  ///< Lagrange multiplier on the energy cap
  bool cap_met = false;     ///< brown energy <= cap at the returned solution
  bool cap_dropped = false; ///< cap was infeasible and ignored
};

class CappedSlotSolver {
 public:
  explicit CappedSlotSolver(LadderConfig ladder = {}) : solver_(ladder) {}

  /// Minimize g(t) subject to y(t) <= cap_kwh (cap in kWh of brown energy).
  CappedSlotResult solve(const dc::Fleet& fleet, const SlotInput& input,
                         const SlotWeights& weights, double cap_kwh) const;

 private:
  LadderSolver solver_;
};

/// Peak-power extension (Sec. 3.1: "additional constraints, such as peak
/// power ... can also be incorporated"): minimize the P3 objective subject
/// to a cap on *facility power* (kW), e.g. a provisioned-power or breaker
/// limit.  Solved by bisecting the facility-power price (SlotWeights::
/// power_price), which is exactly the cap's Lagrange multiplier.
struct PowerCapResult {
  SlotSolution solution;
  double multiplier = 0.0;   ///< $/kWh on facility energy at the optimum
  bool cap_met = false;
  bool cap_dropped = false;  ///< cap below the minimum power serving lambda
};

PowerCapResult solve_power_capped(const dc::Fleet& fleet,
                                  const SlotInput& input,
                                  const SlotWeights& weights,
                                  double max_facility_kw,
                                  const LadderConfig& ladder = {});

}  // namespace coca::opt
