#pragma once
// Per-slot P3 under a nonlinear (increasing-block) electricity tariff —
// the extension Sec. 2.1 claims the analysis supports.
//
// With a piecewise-linear convex tariff c(y), the slot objective
//     V*( c(y) + beta*d ) + q*y
// is convex in the decision through y, and its minimizer either (a) lies in
// the interior of some tier k — where it coincides with the *linear-price*
// optimum at that tier's marginal price w_k — or (b) sits exactly at a tier
// boundary.  Both candidate families reuse the existing machinery: the
// ladder solver per tier price, and the brown-energy-capped solver per
// boundary; the cheapest consistent candidate is exact for the relaxed
// problem.
//
// Note the deficit queue q and the whole of Algorithm 1 are untouched: only
// the per-slot engine changes, exactly as the paper asserts.

#include "energy/tariff.hpp"
#include "opt/capped_slot_solver.hpp"

namespace coca::opt {

struct TieredSlotResult {
  SlotSolution solution;
  double tariff_cost = 0.0;    ///< electricity bill under the tariff ($)
  std::size_t active_tier = 0; ///< tier containing the optimal usage
  bool boundary = false;       ///< optimum pinned at a tier boundary
};

/// Minimize V*(tariff(y) + beta*d*h) + q*y over capacity provisioning and
/// load distribution.  `input.price` is ignored — the tariff replaces it.
/// The returned SlotOutcome carries the tariff-correct electricity cost and
/// objective.
TieredSlotResult solve_tiered_slot(const dc::Fleet& fleet,
                                   const SlotInput& input,
                                   const SlotWeights& weights,
                                   const energy::TieredTariff& tariff,
                                   const LadderConfig& ladder = {});

}  // namespace coca::opt
