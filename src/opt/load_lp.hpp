#pragma once
// Incremental, batched load-LP engine for the per-slot sweeps.
//
// `balance_loads` (opt/load_balancer.hpp) is the *reference* dual
// water-filling solver: it rebuilds the active server classes, re-derives the
// nu bracket and re-runs the whole bisection from scratch on every call.
// GSD's Gibbs sweep calls it once per candidate even though a move flips a
// single group's speed level or active count — the span profiler shows
// `span:slot/gsd_chain/sweep_iter/load_lp` dominating slot time.
//
// LoadLpContext caches, per solver chain, everything a candidate solve can
// reuse:
//   * the fleet's per-(group, level) terms (service rate, facility dynamic
//     slope, gamma cap, bracket denominators), fetched once and refreshed
//     only when the weights' pue/gamma change;
//   * SoA (structure-of-arrays) scratch for the active classes, so the
//     clamp/sqrt best response evaluates element-wise over contiguous arrays
//     and vectorizes (the per-class invariants mu*c, V*beta/x and V*beta*x
//     are hoisted out of the bisection loop);
//   * the dual point of the last solve — clearing price nu, regime branch,
//     effective price mu — keyed by the (input, weights) pair;
//   * an exact memo of previously solved configurations, so re-evaluating
//     the kept configuration (GSD line 8) is a lookup, not a solve.
//
// Exactness policy — the whole engine is gated on it explicitly:
//   * kBitExact (default): every result is bit-for-bit identical to the
//     reference `balance_loads`.  The canonical bracket, tolerances and
//     iteration order are preserved; only the memory layout, the hoisted
//     invariants (identical expressions, evaluated once) and the exact memo
//     differ.  GSD argmins, traces and goldens are unchanged.
//   * kWarmStart: documented-epsilon mode.  The nu clearing re-solves from
//     the cached dual point with a bracket-safeguarded Newton iteration —
//     the gap's analytic derivative rides the same fused SoA pass, so a few
//     gap evaluations replace the ~45-step canonical bisection — and the
//     [p - r]^+ kink regime is
//     revalidated cheaply by re-checking the cached branch first, with a
//     full reference-order re-solve as the fallback when the regime flips.
//     Results agree with the reference to the clearing tolerance (relative
//     ~1e-9 on the served load; objectives agree to ~1e-6 relative — see
//     DESIGN.md "Incremental dual-point cache").
//
// Every solve is wrapped in a `load_lp_warm` or `load_lp_cold` span:
// warm = the cached dual point was valid for this (input, weights) pair
// (i.e. any solve after the first of a slot), cold = first solve or an
// input/weights change invalidated the cache.  Span counts stay a pure
// function of the inputs (contexts are per-chain), preserving the repo-wide
// determinism contract.

#include <cstdint>
#include <limits>
#include <vector>

#include "opt/load_balancer.hpp"
#include "opt/slot_problem.hpp"

namespace coca::opt {

/// Exactness contract of the incremental engine (see file comment).
enum class LoadLpPolicy {
  kBitExact,   ///< bit-for-bit identical to the reference balance_loads
  kWarmStart,  ///< warm nu/mu brackets; documented epsilon vs the reference
};

/// Deterministic counters (pure function of the solve sequence).
struct LoadLpStats {
  std::int64_t solves = 0;        ///< kinked solves (solve() calls)
  std::int64_t warm = 0;          ///< solves with a valid cached dual point
  std::int64_t cold = 0;          ///< solves that started from scratch
  std::int64_t memo_hits = 0;     ///< exact-duplicate configurations
  std::int64_t regime_flips = 0;  ///< warm regime invalidated -> fallback
  std::int64_t nu_iterations = 0; ///< total inner bisection iterations
};

/// Reusable solver state for repeated load-LP solves against one fleet.
/// Not thread-safe: use one context per chain/thread (GSD does).
class LoadLpContext {
 public:
  explicit LoadLpContext(const dc::Fleet& fleet,
                         LoadLpPolicy policy = LoadLpPolicy::kBitExact);

  /// Drop-in for `balance_loads`: reads levels/active counts of `alloc`,
  /// overwrites loads, handles the renewable kink.  Under kBitExact the
  /// result is bit-identical to the reference.
  LoadBalanceResult solve(dc::Allocation& alloc, const SlotInput& input,
                          const SlotWeights& weights);

  /// Drop-in for `balance_loads_linear` (fixed effective price mu, no kink).
  /// Always canonical (bit-exact); the warm policy only affects solve().
  double solve_linear(dc::Allocation& alloc, double lambda, double mu,
                      const SlotWeights& weights);

  /// Batch entry point: evaluate independent candidates against the shared
  /// cache, results identical to calling solve() on each in order.  Used by
  /// the ladder polish grid, where candidates are known upfront.
  void solve_batch(std::vector<dc::Allocation>& candidates,
                   const SlotInput& input, const SlotWeights& weights,
                   std::vector<LoadBalanceResult>& results);

  /// Drop the cached dual point and memo (e.g. when the caller mutates the
  /// fleet).  Per-(group, level) tables are retained.
  void invalidate();

  const dc::Fleet& fleet() const { return *fleet_; }
  LoadLpPolicy policy() const { return policy_; }
  const LoadLpStats& stats() const { return stats_; }

 private:
  /// Rebuild the SoA class arrays for `alloc` from the cached tables.
  /// When the previous build's class membership still matches (the common
  /// single-group flip), the changed groups are patched in place instead of
  /// rebuilding — the patched values come from the same table expressions,
  /// so the arrays are bit-identical to a fresh build.
  void build_classes(const dc::Allocation& alloc, const SlotWeights& weights);
  /// Patch cls_* in place for groups whose (level, active) changed since the
  /// arrays were built.  Returns false (caller rebuilds) when the class set
  /// changed or the diff is too large to be worth patching.
  bool try_patch_classes(const dc::Allocation& alloc);
  void refresh_tables(const SlotWeights& weights);
  /// Table-driven replica of opt::evaluate(): identical expressions, check
  /// order and group-order summation (bit-for-bit), with the spec lookups
  /// served from the flat tables and the string/exception machinery bypassed
  /// on the happy path.  Any check failure defers to the reference so the
  /// diagnostic text (or throw) is exactly the reference's.
  SlotOutcome outcome_at(const dc::Allocation& alloc, const SlotInput& input,
                         const SlotWeights& weights) const;
  /// outcome_at specialised for the warm path's own solved classes: streams
  /// the SoA lanes (all groups, in group order; dead lanes add exact +0.0)
  /// instead of re-walking the allocation, keeping the same expressions and
  /// summation order bit-for-bit.  The solver's invariants make most of
  /// outcome_at's guards statically true; the remaining cap / served checks
  /// are evaluated with the reference's exact predicates and defer to
  /// evaluate() on failure, so the fallback decision is also bit-exact.
  SlotOutcome outcome_from_classes(const dc::Allocation& alloc,
                                   const SlotInput& input,
                                   const SlotWeights& weights) const;
  /// Canonical linear solve over the already-built class arrays.  When
  /// `warm_nu` > 0, the bisection bracket is warmed around it (kWarmStart
  /// only); tolerances stay canonical.
  double solve_linear_built(double lambda, double mu,
                            const SlotWeights& weights, double warm_nu);
  void scatter_loads(dc::Allocation& alloc) const;
  /// In-order active*cap sum over the built classes (cached per build).
  double built_capacity();
  double supply_gap(double nu, double lambda);
  /// supply_gap fused with its analytic nu-derivative (kWarmStart clearing):
  /// the responses written to cls_resp_ are bit-identical to supply_gap's.
  double supply_gap_grad(double nu, double lambda, double& grad);
  void settle_residual(double lambda);
  void greedy_fill(double lambda, double mu);
  /// Reference-order kinked solve (regimes A -> B -> boundary) over the
  /// built class arrays; identical decision sequence to `balance_loads`.
  LoadBalanceResult solve_cold(dc::Allocation& alloc, const SlotInput& input,
                               const SlotWeights& weights);
  LoadBalanceResult solve_warm(dc::Allocation& alloc, const SlotInput& input,
                               const SlotWeights& weights);
  bool cache_valid_for(const SlotInput& input,
                       const SlotWeights& weights) const;
  void remember(const dc::Allocation& alloc, const SlotInput& input,
                const SlotWeights& weights, const LoadBalanceResult& result);
  /// Memo keys cover only the allocation: the memo is consulted only while
  /// warm (same input/weights as the cached dual point) and cleared on every
  /// cold solve, so input and weights are invariant across entries.
  void memo_clear();
  /// Returns the entry index, or -1 when the configuration is not memoised.
  /// Compares stored keys bitwise against the allocation itself, so probing
  /// needs no materialised key vector.
  std::ptrdiff_t memo_find(std::uint64_t hash,
                           const dc::Allocation& alloc) const;
  /// Inserts the solved configuration; materialises the key only here.
  void memo_store(std::uint64_t hash, const LoadBalanceResult& result,
                  const dc::Allocation& alloc);
  /// Table-driven replica of `allocation_facility_kw` (pue * it power, same
  /// expressions and group order bit-for-bit); defers to the reference on any
  /// power-model check failure, mirroring outcome_at's fallback design.
  double facility_kw_at(const dc::Allocation& alloc,
                        const SlotWeights& weights) const;

  const dc::Fleet* fleet_;
  LoadLpPolicy policy_;
  LoadLpStats stats_;

  // Per-(group, level) tables, flattened with group offsets.  `rate_table_`
  // and `dyn_slope_table_` come straight from the specs (built once);
  // `slope_table_` (pue-scaled), `cap_table_` (gamma cap) and
  // `bracket_denom_table_` refresh when pue/gamma change.
  std::vector<std::size_t> level_offset_;
  std::vector<double> rate_table_;
  std::vector<double> dyn_slope_table_;
  std::vector<double> dyn_kw_table_;     ///< dynamic_power_kw per (g, level)
  std::vector<double> static_table_;     ///< static_power_kw per group
  std::vector<double> server_count_;     ///< server count per group
  std::vector<double> slope_table_;
  std::vector<double> cap_table_;
  std::vector<double> bracket_denom_table_;
  double tables_pue_ = -1.0;
  double tables_gamma_ = -1.0;

  // SoA scratch for the active classes of the current solve.  While a
  // solve() is in flight the allocation's levels/active counts are fixed, so
  // the class arrays are built once and `classes_ready_` short-circuits the
  // interior rebuilds (the boundary regime's outer bisection re-clears the
  // same classes at every mu iterate).
  bool classes_ready_ = false;
  // Delta-build state: `cls_key_` is the (level, active) key the class
  // arrays currently describe (empty = arrays invalid), `cls_index_` maps
  // group -> class index (-1 when inactive), `dirty_` lists the classes
  // patched since the per-solve invariants were last refreshed.
  std::vector<double> cls_key_;
  std::vector<std::int32_t> cls_index_;
  std::vector<std::int32_t> dirty_;
  bool dirty_all_ = true;
  double inv_mu_ = std::numeric_limits<double>::quiet_NaN();
  double inv_vbeta_ = std::numeric_limits<double>::quiet_NaN();
  // Analytic warm seed (kWarmStart only): the gap residual and gradient
  // captured at the last clearing price.  A class patch adjusts the residual
  // by the patched lanes' contribution delta at `seed_nu_`, so the next warm
  // solve can take one Newton step *before* its first gap evaluation.  The
  // seed only picks the Newton starting iterate — the bracket-safeguarded
  // loop still verifies the clearing tolerance with real evaluations.
  bool seed_valid_ = false;
  double seed_nu_ = -1.0;
  double seed_fx_ = 0.0;
  double seed_grad_ = 0.0;
  double seed_delta_ = 0.0;   ///< patched lanes' gap-contribution delta
  double seed_gdelta_ = 0.0;  ///< patched lanes' gradient-contribution delta
  double seed_lambda_ = -1.0;
  std::vector<std::size_t> cls_group_;
  std::vector<double> cls_rate_;
  std::vector<double> cls_slope_;
  std::vector<double> cls_active_;
  std::vector<double> cls_cap_;
  std::vector<double> cls_denom_;
  std::vector<double> cls_stat_;  ///< static power kw (per server)
  std::vector<double> cls_dyn_;   ///< dynamic power kw at the lane's level
  // Per-solve invariants (depend on mu and V*beta).
  std::vector<double> cls_ms_;   ///< mu * slope
  std::vector<double> cls_thr_;  ///< activation threshold mu*c + V*beta/x
  std::vector<double> cls_vbr_;  ///< V*beta * x
  std::vector<double> cls_ivbr_; ///< 1/(V*beta*x); steers gradients only
  std::vector<double> cls_hib_;  ///< per-class upper bracket bound
  std::vector<double> cls_resp_;
  std::vector<double> cls_gl_;   ///< gradient lanes (warm Newton scratch)
  std::vector<double> cls_load_;
  // Canonical (in-order) active*cap capacity of the built classes, computed
  // once per class-array generation and shared by the solve() pre-check and
  // solve_linear_built's feasibility gate (identical expression, so reuse is
  // bit-exact).
  double built_capacity_ = 0.0;
  bool capacity_ready_ = false;
  std::vector<std::size_t> order_;  ///< greedy_fill scratch

  // Cached dual point of the last kinked solve.
  bool cache_valid_ = false;
  SlotInput cached_input_;
  SlotWeights cached_weights_;
  double cached_nu_ = 0.0;
  double cached_mu_ = 0.0;
  PowerRegime cached_regime_ = PowerRegime::kGridDraw;
  bool cached_feasible_ = false;

  // Exact-duplicate memo (cleared on input/weights change): open-addressed
  // hash table over `memo_slots_` (entry indices, -1 = empty) so lookups
  // stay O(1) as the sweep fills the memo.  Entry storage is flat SoA —
  // keys and solved loads live in contiguous arrays at a fixed per-entry
  // stride — so probes touch two cache lines and clearing just resets
  // `memo_used_`; the steady-state sweep allocates nothing.
  std::size_t memo_used_ = 0;
  std::vector<std::uint64_t> memo_hashes_;
  std::vector<double> memo_keys_;    ///< flat, stride = 2 * groups
  std::vector<double> memo_loads_;   ///< flat, stride = groups
  std::vector<LoadBalanceResult> memo_results_;
  std::vector<std::int32_t> memo_slots_;
};

}  // namespace coca::opt
