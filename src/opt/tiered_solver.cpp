#include "opt/tiered_solver.hpp"

#include <cmath>
#include <limits>

namespace coca::opt {
namespace {

/// Re-score a solved allocation under the tariff: replace the linear
/// electricity cost with the tariff bill and rebuild cost/objective.
SlotOutcome rescore(const SlotOutcome& outcome, const SlotWeights& weights,
                    const energy::TieredTariff& tariff) {
  SlotOutcome scored = outcome;
  scored.electricity_cost = tariff.cost(outcome.brown_kwh);
  scored.total_cost = scored.electricity_cost + scored.delay_cost;
  scored.objective =
      weights.V * scored.total_cost + weights.q * scored.brown_kwh;
  return scored;
}

}  // namespace

TieredSlotResult solve_tiered_slot(const dc::Fleet& fleet,
                                   const SlotInput& input,
                                   const SlotWeights& weights,
                                   const energy::TieredTariff& tariff,
                                   const LadderConfig& ladder) {
  LadderSolver solver(ladder);
  CappedSlotSolver capped(ladder);

  TieredSlotResult best;
  best.solution.outcome.objective = std::numeric_limits<double>::infinity();
  auto consider = [&](SlotSolution candidate, std::size_t tier, bool boundary) {
    if (!candidate.feasible) return;
    candidate.outcome = rescore(candidate.outcome, weights, tariff);
    if (candidate.outcome.objective < best.solution.outcome.objective) {
      best.solution = std::move(candidate);
      best.tariff_cost = best.solution.outcome.electricity_cost;
      best.active_tier = tier;
      best.boundary = boundary;
    }
  };

  // (a) Interior candidates: solve at each tier's marginal price; the
  // candidate is *consistent* when its usage actually lands in that tier.
  // Inconsistent candidates are still scored with the true tariff (they are
  // feasible decisions), so the search never loses to them.
  for (std::size_t k = 0; k < tariff.tier_count(); ++k) {
    SlotInput tier_input = input;
    tier_input.price = tariff.tier(k).price;
    SlotSolution candidate = solver.solve(fleet, tier_input, weights);
    const bool consistent =
        candidate.feasible && tariff.tier_of(candidate.outcome.brown_kwh) == k;
    consider(std::move(candidate), k, false);
    (void)consistent;
  }

  // (b) Boundary candidates: pin usage to each finite tier threshold via the
  // brown-energy cap (using the tier-above price for the inner solve; the
  // rescoring applies the exact tariff anyway).
  for (std::size_t k = 0; k + 1 < tariff.tier_count(); ++k) {
    SlotInput boundary_input = input;
    boundary_input.price = tariff.tier(k + 1).price;
    const auto pinned = capped.solve(fleet, boundary_input, weights,
                                     tariff.tier(k).upto_kwh);
    if (pinned.cap_dropped) continue;
    consider(pinned.solution, k, true);
  }

  return best;
}

}  // namespace coca::opt
