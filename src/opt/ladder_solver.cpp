#include "opt/ladder_solver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "obs/metrics.hpp"
#include "util/solvers.hpp"

namespace coca::opt {
namespace {

constexpr double kTiny = 1e-12;

/// Per-server cost of running at level data (rate s, facility static power
/// ps, facility dynamic slope c) with per-server load a.
double server_cost(double mu, double v_beta, double ps, double c, double s,
                   double a) {
  return mu * (ps + c * a) + v_beta * a / (s - a);
}

/// Per-server best response load to workload price nu.
double response(double nu, double mu, double v_beta, double c, double s,
                double gamma) {
  const double threshold = mu * c + v_beta / s;
  if (nu <= threshold) return 0.0;
  const double a = s - std::sqrt(v_beta * s / (nu - mu * c));
  return std::clamp(a, 0.0, gamma * s);
}

struct GroupLevelView {
  double rate = 0.0;        ///< s_k
  double slope = 0.0;       ///< facility dynamic slope pue*p_c/s
  double static_kw = 0.0;   ///< facility static power pue*p_s
};

struct GroupView {
  std::size_t index = 0;
  double servers = 0.0;
  std::vector<GroupLevelView> levels;

  /// Best (level, per-server load, profit) at workload price nu.
  struct Response {
    std::size_t level = 0;
    double load = 0.0;
    double profit = 0.0;  ///< per-server profit nu*a - phi(a)
  };
  Response best_response(double nu, double mu, double v_beta,
                         double gamma) const {
    Response best;
    best.profit = 0.0;
    bool found = false;
    for (std::size_t k = 0; k < levels.size(); ++k) {
      const auto& lv = levels[k];
      const double a = response(nu, mu, v_beta, lv.slope, lv.rate, gamma);
      if (a <= kTiny) continue;
      const double profit =
          nu * a - server_cost(mu, v_beta, lv.static_kw, lv.slope, lv.rate, a);
      if (!found || profit > best.profit) {
        best = {k, a, profit};
        found = true;
      }
    }
    if (!found || best.profit <= 0.0) return {0, 0.0, 0.0};
    return best;
  }

  /// Price at which the group first becomes profitable to activate:
  /// min over levels of the average cost at the jointly optimal load a*.
  double break_even(double mu, double v_beta, double gamma) const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& lv : levels) {
      const double theta = std::sqrt(mu * lv.static_kw / v_beta);
      double a = lv.rate * theta / (1.0 + theta);
      a = std::clamp(a, 1e-9 * lv.rate, gamma * lv.rate);
      best = std::min(best, server_cost(mu, v_beta, lv.static_kw, lv.slope,
                                        lv.rate, a) /
                                a);
    }
    return best;
  }
};

std::vector<GroupView> make_views(const dc::Fleet& fleet, double pue) {
  std::vector<GroupView> views(fleet.group_count());
  for (std::size_t g = 0; g < fleet.group_count(); ++g) {
    const auto& group = fleet.group(g);
    views[g].index = g;
    views[g].servers = static_cast<double>(group.server_count());
    views[g].levels.reserve(group.spec().level_count());
    for (std::size_t k = 0; k < group.spec().level_count(); ++k) {
      const auto& lv = group.spec().level(k);
      views[g].levels.push_back({lv.service_rate,
                                 pue * group.spec().dynamic_slope(k),
                                 pue * group.spec().static_power_kw()});
    }
  }
  return views;
}

/// Pure energy-minimizing provisioning for the degenerate beta == 0 case:
/// activate the most efficient (group, level) slices in merit order at the
/// utilization cap.
dc::Allocation energy_greedy(const dc::Fleet& fleet, double lambda, double mu,
                             const SlotWeights& weights) {
  struct Slice {
    std::size_t group;
    std::size_t level;
    double unit_cost;
    double capacity;
  };
  std::vector<Slice> slices;
  for (std::size_t g = 0; g < fleet.group_count(); ++g) {
    const auto& group = fleet.group(g);
    for (std::size_t k = 0; k < group.spec().level_count(); ++k) {
      const auto& lv = group.spec().level(k);
      const double a = weights.gamma * lv.service_rate;
      const double cost =
          mu * weights.pue *
          (group.spec().static_power_kw() + group.spec().dynamic_slope(k) * a) /
          a;
      slices.push_back({g, k, cost,
                        static_cast<double>(group.server_count()) * a});
    }
  }
  std::sort(slices.begin(), slices.end(),
            [](const Slice& a, const Slice& b) { return a.unit_cost < b.unit_cost; });
  dc::Allocation alloc(fleet.group_count());
  std::vector<bool> used(fleet.group_count(), false);
  double remaining = lambda;
  for (const auto& s : slices) {
    if (remaining <= 0.0) break;
    if (used[s.group]) continue;  // one level per group
    used[s.group] = true;
    const double take = std::min(s.capacity, remaining);
    const double per = weights.gamma *
                       fleet.group(s.group).spec().level(s.level).service_rate;
    alloc[s.group].level = s.level;
    alloc[s.group].active = std::ceil(take / per - 1e-9);
    alloc[s.group].load = take;
    remaining -= take;
  }
  return alloc;
}

}  // namespace

SlotSolution LadderSolver::solve_linear(const dc::Fleet& fleet,
                                        const SlotInput& input,
                                        const SlotWeights& weights, double mu,
                                        LoadLpContext& lp) const {
  SlotSolution solution;
  const double lambda = input.lambda;
  const double v_beta = weights.V * weights.beta;

  if (mu <= kTiny) {
    // Free energy: delay-only objective; all servers on at top speed.
    solution.alloc = all_on_max(fleet, lambda, weights.gamma);
    lp.solve_linear(solution.alloc, lambda, 0.0, weights);
  } else if (v_beta <= kTiny) {
    solution.alloc = energy_greedy(fleet, lambda, mu, weights);
    lp.solve_linear(solution.alloc, lambda, mu, weights);
  } else {
    const auto views = make_views(fleet, weights.pue);
    // Market clearing: find the workload price at which the fleet's supply
    // meets lambda.
    auto supply = [&](double nu) {
      double total = 0.0;
      for (const auto& view : views) {
        const auto r = view.best_response(nu, mu, v_beta, weights.gamma);
        total += view.servers * r.load;
      }
      return total;
    };
    // Upper bracket: a price at which *every* group is profitable at the
    // utilization cap, so supply(hi) equals the full gamma-capped capacity.
    // That requires hi to exceed both the marginal cost at a = gamma*s (so
    // the response saturates) and the average cost there (so profit > 0).
    double hi = 0.0;
    for (const auto& view : views) {
      for (const auto& lv : view.levels) {
        const double a_cap = weights.gamma * lv.rate;
        const double marginal =
            mu * lv.slope + v_beta * lv.rate /
                                ((lv.rate - a_cap) * (lv.rate - a_cap));
        const double average =
            server_cost(mu, v_beta, lv.static_kw, lv.slope, lv.rate, a_cap) /
            a_cap;
        hi = std::max({hi, marginal, average});
      }
    }
    hi = hi * (1.0 + 1e-6) + kTiny;
    // supply() is monotone but has activation jumps (groups switch on in a
    // bang-bang fashion), so we keep the bracket's *upper* side: the smallest
    // price found with supply >= lambda.  The trimming below then sizes the
    // marginal group down to close any oversupply.
    double lo_price = 0.0;
    double nu_star = hi;
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (lo_price + nu_star);
      const double s = supply(mid);
      if (s >= lambda) {
        nu_star = mid;
        if (s <= lambda * (1.0 + 1e-9)) break;
      } else {
        lo_price = mid;
      }
      if (nu_star - lo_price <= 1e-12 * hi) break;
    }

    // Build the bang-bang activation at nu*, then trim oversupply starting
    // from the least efficient (highest break-even) active groups so the
    // marginal group is partially sized.
    struct Active {
      std::size_t group;
      std::size_t level;
      double per_load;
      double supply;
      double break_even;
    };
    std::vector<Active> actives;
    for (const auto& view : views) {
      const auto r = view.best_response(nu_star, mu, v_beta, weights.gamma);
      if (r.load <= kTiny) continue;
      actives.push_back({view.index, r.level, r.load, view.servers * r.load,
                         view.break_even(mu, v_beta, weights.gamma)});
    }
    double total = 0.0;
    for (const auto& a : actives) total += a.supply;
    std::sort(actives.begin(), actives.end(), [](const Active& a, const Active& b) {
      return a.break_even > b.break_even;
    });
    solution.alloc = dc::Allocation(fleet.group_count());
    for (auto& a : actives) {
      double servers = static_cast<double>(fleet.group(a.group).server_count());
      if (total - a.supply >= lambda) {
        total -= a.supply;  // drop entirely
        continue;
      }
      if (total > lambda) {
        // Marginal group: size it to close the gap.
        const double needed = a.supply - (total - lambda);
        servers = std::clamp(needed / a.per_load, 0.0, servers);
        total = lambda;
      }
      if (config_.integer_counts) servers = std::ceil(servers - 1e-9);
      solution.alloc[a.group].level = a.level;
      solution.alloc[a.group].active = servers;
    }
    const double nu = lp.solve_linear(solution.alloc, lambda, mu, weights);
    if (nu < 0.0) {
      // Rounding starved capacity (can only happen in tiny fleets): fall
      // back to the always-feasible configuration.
      solution.alloc = all_on_max(fleet, lambda, weights.gamma);
      lp.solve_linear(solution.alloc, lambda, mu, weights);
    }
  }

  solution.outcome = evaluate(fleet, solution.alloc, input, weights);
  solution.feasible = solution.outcome.feasible;
  solution.effective_price = mu;
  return solution;
}

// OBS-EXEMPT(callers open the "ladder_solve" span for this stage)
// Opening one here too would change the pinned span goldens.
SlotSolution LadderSolver::solve(const dc::Fleet& fleet, const SlotInput& input,
                                 const SlotWeights& weights,
                                 LoadLpContext* lp) const {
  obs::count("ladder.solves");
  std::optional<LoadLpContext> local;
  if (lp == nullptr) lp = &local.emplace(fleet);
  SlotSolution solution;
  if (input.lambda <= kTiny) {
    solution.alloc = all_off(fleet);
    solution.outcome = evaluate(fleet, solution.alloc, input, weights);
    solution.feasible = true;
    solution.regime = PowerRegime::kRenewable;
    return solution;
  }
  if (!slot_feasible(fleet, input.lambda, weights.gamma)) {
    solution.alloc = all_off(fleet);
    solution.outcome.infeasible_reason =
        "lambda exceeds the gamma-capped fleet capacity";
    return solution;
  }

  const double mu_full = weights.brown_price(input.price);

  // Regime A: optimum draws grid power.
  solution = solve_linear(fleet, input, weights, mu_full, *lp);
  solution.regime = PowerRegime::kGridDraw;
  if (solution.outcome.facility_power_kw < input.onsite_kw * (1.0 - 1e-9)) {
    // Regime B: free energy below the on-site supply (only the facility-
    // power price — the peak-power extension's multiplier — remains).
    const double mu_floor = weights.power_price;
    SlotSolution delay_min = solve_linear(fleet, input, weights, mu_floor, *lp);
    if (delay_min.outcome.facility_power_kw <=
        input.onsite_kw * (1.0 + 1e-9)) {
      delay_min.regime = PowerRegime::kRenewable;
      solution = delay_min;
    } else {
      // Boundary: pin facility power to the on-site supply.
      auto power_gap = [&](double mu) {
        return solve_linear(fleet, input, weights, mu, *lp)
                   .outcome.facility_power_kw -
               input.onsite_kw;
      };
      util::BisectionOptions options;
      options.x_tol = std::max(1e-12, mu_full * 1e-6);
      options.f_tol = 1e-4 * std::max(1.0, input.onsite_kw);
      options.max_iterations = 60;
      const auto boundary = util::bisect(power_gap, mu_floor, mu_full, options);
      SlotSolution pinned = solve_linear(fleet, input, weights, boundary.x, *lp);
      pinned.regime = PowerRegime::kBoundary;
      // Keep whichever of the three candidates scores best on the true
      // objective (the kinked objective is what evaluate() reports).
      if (pinned.outcome.objective < solution.outcome.objective) solution = pinned;
      if (delay_min.outcome.objective < solution.outcome.objective) {
        delay_min.regime = PowerRegime::kRenewable;
        solution = delay_min;
      }
    }
  }

  for (int pass = 0; pass < config_.polish_passes; ++pass) {
    if (!polish(fleet, input, weights, solution, *lp)) break;
  }
  return solution;
}

bool LadderSolver::polish(const dc::Fleet& fleet, const SlotInput& input,
                          const SlotWeights& weights, SlotSolution& solution,
                          LoadLpContext& lp) const {
  bool improved = false;
  std::vector<dc::Allocation> batch;
  std::vector<LoadBalanceResult> balanced;
  for (std::size_t g = 0; g < fleet.group_count(); ++g) {
    const auto& group = fleet.group(g);
    const double servers = static_cast<double>(group.server_count());
    const double step =
        std::max(1.0, std::floor(servers * config_.polish_count_step));
    const double current_active = solution.alloc[g].active;
    std::vector<double> counts = {current_active - step, current_active + step,
                                  0.0, servers};
    // Batch-evaluate the whole (level, count) grid for this group.  Each
    // candidate fully determines its solve (levels/counts are read, loads
    // are overwritten), so evaluating upfront and replaying the sequential
    // adopt/skip logic below reproduces the one-at-a-time loop bit-for-bit;
    // mid-grid adoptions only change group g's entry, which every candidate
    // overwrites anyway.
    batch.clear();
    for (std::size_t k = 0; k < group.spec().level_count(); ++k) {
      for (double count : counts) {
        count = std::clamp(count, 0.0, servers);
        if (config_.integer_counts) count = std::round(count);
        batch.push_back(solution.alloc);
        batch.back()[g].level = k;
        batch.back()[g].active = count;
      }
    }
    lp.solve_batch(batch, input, weights, balanced);
    std::size_t idx = 0;
    for (std::size_t k = 0; k < group.spec().level_count(); ++k) {
      for (double count : counts) {
        count = std::clamp(count, 0.0, servers);
        if (config_.integer_counts) count = std::round(count);
        const std::size_t i = idx++;
        if (k == solution.alloc[g].level && count == current_active) continue;
        if (balanced[i].feasible &&
            balanced[i].outcome.objective <
                solution.outcome.objective * (1.0 - 1e-10)) {
          solution.alloc = batch[i];
          solution.outcome = balanced[i].outcome;
          solution.regime = balanced[i].regime;
          solution.effective_price = balanced[i].effective_price;
          improved = true;
        }
      }
    }
  }
  return improved;
}

}  // namespace coca::opt
