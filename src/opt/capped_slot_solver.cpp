#include "opt/capped_slot_solver.hpp"

#include <algorithm>

#include "util/solvers.hpp"

namespace coca::opt {

// OBS-EXEMPT(tiered/PerfectHP callers open the enclosing span)
// Adding a span here would change the paths pinned by obs_trace_golden_test.
CappedSlotResult CappedSlotSolver::solve(const dc::Fleet& fleet,
                                         const SlotInput& input,
                                         const SlotWeights& weights,
                                         double cap_kwh) const {
  CappedSlotResult result;
  SlotWeights w = weights;
  w.q = 0.0;
  // One load-LP context carries the cached per-(group, level) tables across
  // every multiplier probe of the bisection below (each probe changes q, so
  // probes start cold, but the fleet tables and scratch are reused).
  LoadLpContext lp(fleet);

  // Unconstrained cost minimizer: if it already meets the cap, the
  // multiplier is zero (complementary slackness).
  result.solution = solver_.solve(fleet, input, w, &lp);
  if (!result.solution.feasible) return result;
  if (result.solution.outcome.brown_kwh <= cap_kwh * (1.0 + 1e-9)) {
    result.cap_met = true;
    return result;
  }

  // Energy-frugality limit: as mu -> inf the solver minimizes brown energy;
  // probe a very large multiplier to test whether the cap is attainable.
  const double mu_probe =
      std::max(1.0, weights.V * input.price) * 1e7;
  SlotWeights frugal = w;
  frugal.q = mu_probe;
  const SlotSolution min_energy = solver_.solve(fleet, input, frugal, &lp);
  if (min_energy.outcome.brown_kwh > cap_kwh * (1.0 + 1e-9)) {
    // The cap cannot be met at all: drop it (PerfectHP's fallback).
    result.cap_dropped = true;
    return result;
  }

  // Bisection on the multiplier: brown energy is nonincreasing in mu.
  auto excess = [&](double mu) {
    SlotWeights probe = w;
    probe.q = mu;
    return solver_.solve(fleet, input, probe, &lp).outcome.brown_kwh - cap_kwh;
  };
  util::BisectionOptions options;
  options.x_tol = mu_probe * 1e-9;
  options.f_tol = 1e-6 * std::max(1.0, cap_kwh);
  options.max_iterations = 80;
  const auto root = util::bisect(excess, 0.0, mu_probe, options);

  // Take the smallest multiplier that satisfies the cap (round up slightly
  // to land on the feasible side of the bisection bracket).
  double mu_star = root.x;
  SlotWeights final_weights = w;
  final_weights.q = mu_star;
  SlotSolution solution = solver_.solve(fleet, input, final_weights, &lp);
  if (solution.outcome.brown_kwh > cap_kwh * (1.0 + 1e-9)) {
    mu_star = std::min(mu_probe, mu_star * (1.0 + 1e-6) + 1e-12);
    final_weights.q = mu_star;
    solution = solver_.solve(fleet, input, final_weights, &lp);
    if (solution.outcome.brown_kwh > cap_kwh * (1.0 + 1e-6)) {
      // Numerical edge: fall back to the provably capped probe solution.
      solution = min_energy;
      mu_star = mu_probe;
    }
  }
  // Report the true cost/objective at q = 0 weights for accounting clarity.
  solution.outcome = evaluate(fleet, solution.alloc, input, w);
  result.solution = solution;
  result.multiplier = mu_star;
  result.cap_met = true;
  return result;
}

PowerCapResult solve_power_capped(const dc::Fleet& fleet,
                                  const SlotInput& input,
                                  const SlotWeights& weights,
                                  double max_facility_kw,
                                  const LadderConfig& ladder) {
  PowerCapResult result;
  LadderSolver solver(ladder);
  SlotWeights base = weights;
  base.power_price = 0.0;
  LoadLpContext lp(fleet);

  // Unconstrained optimum: if it fits under the cap, the multiplier is 0.
  result.solution = solver.solve(fleet, input, base, &lp);
  if (!result.solution.feasible) return result;
  if (result.solution.outcome.facility_power_kw <=
      max_facility_kw * (1.0 + 1e-9)) {
    result.cap_met = true;
    return result;
  }

  // Probe the power-frugality limit.
  const double xi_probe = std::max(1.0, weights.V * input.price) * 1e7;
  SlotWeights frugal = base;
  frugal.power_price = xi_probe;
  const SlotSolution min_power = solver.solve(fleet, input, frugal, &lp);
  if (min_power.outcome.facility_power_kw > max_facility_kw * (1.0 + 1e-9)) {
    // Serving lambda requires more power than the cap allows.
    result.cap_dropped = true;
    return result;
  }

  // Bisection: facility power is nonincreasing in the power price.
  double lo = 0.0;
  double hi = xi_probe;
  SlotSolution best = min_power;
  double best_xi = xi_probe;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    SlotWeights probe = base;
    probe.power_price = mid;
    const SlotSolution at_mid = solver.solve(fleet, input, probe, &lp);
    if (at_mid.outcome.facility_power_kw <= max_facility_kw * (1.0 + 1e-9)) {
      best = at_mid;
      best_xi = mid;
      hi = mid;
      if (at_mid.outcome.facility_power_kw >= max_facility_kw * 0.999) break;
    } else {
      lo = mid;
    }
  }
  // Report true costs (no power price in the billed outcome).
  best.outcome = evaluate(fleet, best.alloc, input, base);
  result.solution = best;
  result.multiplier = best_xi;
  result.cap_met = true;
  return result;
}

}  // namespace coca::opt
