#pragma once
// GSD: Gibbs Sampling-based Distributed optimization (Algorithm 2).
//
// The paper's distributed solver for P3: at each iteration a uniformly
// random server group explores a random alternative speed configuration; the
// optimal load distribution is computed for the explored configuration (the
// convex inner problem, solved by dual decomposition); and the *explored*
// configuration replaces the kept one with probability
//     u = exp(delta/g_e) / (exp(delta/g_e) + exp(delta/g_*)),
// the two-point Gibbs acceptance of Sec. 4.2 (computed here in a numerically
// safe logistic form).  Theorem 1: as the temperature delta -> infinity the
// chain's stationary distribution concentrates on the global optimum.
//
// As in the paper, infeasible explorations (line 2's capacity check fails)
// are skipped, and an adaptive schedule can raise delta over iterations so
// the chain first explores, then concentrates ("advisory approach", Sec. 4.2).
//
// Multi-chain mode: `chains > 1` runs that many *independent* Gibbs chains
// concurrently, chain c seeded with `seed ^ c` (so chain 0 reproduces the
// single-chain run bit-for-bit), and merges to the best feasible incumbent
// in deterministic chain order.  Results are a pure function of the config —
// identical at 1 thread and N threads.

#include <cstdint>
#include <optional>
#include <vector>

#include "opt/ladder_solver.hpp"
#include "opt/load_lp.hpp"
#include "util/rng.hpp"

namespace coca::opt {

struct GsdConfig {
  int iterations = 500;          ///< paper: 500 iterations for 200 groups
  double delta = 1e6;            ///< temperature (paper's Fig. 4 uses ~1e6)
  bool adaptive = false;         ///< grow delta over iterations
  double delta_initial = 1e4;    ///< starting delta when adaptive
  double delta_growth = 1.02;    ///< per-iteration multiplicative growth
  /// Granularity of active-count proposals: counts are multiples of
  /// ceil(servers/count_steps).  8 keeps the chain small but expressive.
  int count_steps = 8;
  std::uint64_t seed = 1;
  /// Record the kept objective after every iteration (Fig. 4 trajectories).
  bool record_trajectory = false;
  /// Independent Gibbs chains run concurrently; chain c uses seed ^ c.
  int chains = 1;
  /// Worker threads for multi-chain runs: 0 = one per chain (capped at the
  /// hardware), 1 = serial.  Has no effect on the merged result.
  int threads = 0;
  /// Exactness policy of the per-chain incremental load-LP engine.  The
  /// default keeps every argmin bit-identical to the reference
  /// balance_loads; kWarmStart trades a documented epsilon (see
  /// opt/load_lp.hpp) for warm-started nu/mu bisections.
  LoadLpPolicy lp_policy = LoadLpPolicy::kBitExact;
};

struct GsdResult {
  SlotSolution solution;             ///< kept configuration at termination
  SlotSolution best;                 ///< best configuration ever visited
  std::vector<double> trajectory;    ///< kept objective per iteration
  int evaluations = 0;               ///< load-balance solves performed
  int accepted = 0;                  ///< exploration acceptances
  int chains_run = 1;                ///< chains merged into this result
  int winning_chain = 0;             ///< chain that supplied solution/best
  LoadLpStats lp_stats;              ///< load-LP engine counters (all chains)
};

class GsdSolver {
 public:
  explicit GsdSolver(GsdConfig config = {}) : config_(config) {}

  /// Run Algorithm 2 from an optional initial configuration (defaults to
  /// everything on at top speed).
  GsdResult solve(const dc::Fleet& fleet, const SlotInput& input,
                  const SlotWeights& weights,
                  std::optional<dc::Allocation> initial = std::nullopt) const;

  const GsdConfig& config() const { return config_; }

  /// The two-point Gibbs acceptance probability of line 4 (public for
  /// tests): u = exp(delta/g_e)/(exp(delta/g_e)+exp(delta/g_kept)).
  static double acceptance_probability(double delta, double explored_objective,
                                       double kept_objective);

 private:
  /// One serial Gibbs chain (Algorithm 2) with an explicit seed.
  GsdResult solve_chain(const dc::Fleet& fleet, const SlotInput& input,
                        const SlotWeights& weights,
                        const std::optional<dc::Allocation>& initial,
                        std::uint64_t seed) const;

  GsdConfig config_;
};

}  // namespace coca::opt
