#pragma once
// The per-slot optimization problem P3 (Eq. 16) and its cost accounting.
//
// Given the slot's environment (workload lambda, on-site renewable power r,
// electricity price w) and the controller weights (V, carbon-deficit queue
// length q, delay weight beta, utilization cap gamma, PUE), an Allocation is
// scored by
//     cost g      = e + beta * d * slot_hours            (Eq. 5)
//     brown y     = [p - r]^+ * slot_hours               (kWh)
//     objective   = V * g + q * y                        (Eq. 16)
// where e = w * y and d is the fleet delay cost (Eq. 4).

#include <limits>
#include <string>

#include "dc/delay_model.hpp"
#include "dc/power_model.hpp"
#include "util/units.hpp"

namespace coca::opt {

/// Environment observed at the start of a slot (the paper's lambda(t), r(t),
/// w(t); off-site renewables f(t) are *not* an input to P3 — they enter only
/// the queue update after the slot).
///
/// The raw fields stay plain doubles (aggregate init is used all over the
/// solvers and benches); the typed accessors and factory below are the
/// dimension-checked way in and out.
struct SlotInput {
  double lambda = 0.0;     ///< total workload arrival rate (req/s)
  double onsite_kw = 0.0;  ///< on-site renewable power r(t) (kW)
  double price = 0.0;      ///< electricity price w(t) ($/kWh)

  units::RequestsPerSec arrival_rate() const {
    return units::RequestsPerSec{lambda};
  }
  units::KiloWatts onsite_power() const { return units::KiloWatts{onsite_kw}; }
  units::UsdPerKwh price_per_kwh() const { return units::UsdPerKwh{price}; }

  /// Typed factory: passing a price where power is expected (or any other
  /// dimension mixup) fails to compile.
  static SlotInput of(units::RequestsPerSec lambda_rps,
                      units::KiloWatts onsite, units::UsdPerKwh price_kwh) {
    return SlotInput{lambda_rps.value(), onsite.value(), price_kwh.value()};
  }
};

/// Controller weights and model parameters for P3.
struct SlotWeights {
  double V = 1.0;          ///< cost-carbon parameter (Sec. 4.1)
  double q = 0.0;          ///< carbon-deficit queue length (kWh)
  double beta = 0.005;     ///< delay-cost weight ($ per job-hour in system)
  double gamma = 0.9;      ///< maximum server utilization (constraint 7)
  double pue = 1.0;        ///< power usage effectiveness multiplier
  double slot_hours = 1.0; ///< slot duration
  /// Price on *total facility energy* regardless of renewables ($/kWh).
  /// 0 in the paper's base model; used by the peak-power extension
  /// (Sec. 3.1: "additional constraints, such as peak power ... can also be
  /// incorporated") as the Lagrange multiplier of a facility power cap, and
  /// usable directly to model demand charges.
  double power_price = 0.0;

  /// Effective brown-energy price in the P3 objective ($/kWh):
  /// V*w + q — the "V*w plus queue" weighting Sec. 4.1 describes —
  /// plus any facility-power price.
  ///
  /// V and q are Lyapunov weights, deliberately raw doubles: in the
  /// drift-plus-penalty objective they bridge units (q multiplies kWh yet is
  /// commensurable with V*$), so they live outside the typed layer.
  double brown_price(double electricity_price) const {
    return V * electricity_price + q + power_price;
  }

  units::Hours slot_duration() const { return units::Hours{slot_hours}; }
  units::UsdPerKwh brown_price(units::UsdPerKwh electricity_price) const {
    return units::UsdPerKwh{brown_price(electricity_price.value())};
  }
};

/// Full cost breakdown of an allocation at one slot.
struct SlotOutcome {
  double it_power_kw = 0.0;
  double facility_power_kw = 0.0;
  double brown_kwh = 0.0;         ///< y(t)
  double electricity_cost = 0.0;  ///< e(t), $
  double delay_jobs = 0.0;        ///< d(t), mean jobs in system
  double delay_cost = 0.0;        ///< beta * d * slot_hours, $
  double total_cost = 0.0;        ///< g(t) = e + delay_cost, $
  double objective = std::numeric_limits<double>::infinity();  ///< Eq. 16
  bool feasible = false;
  std::string infeasible_reason;

  // Typed views of the billed quantities (see util/units.hpp).
  units::KiloWatts it_power() const { return units::KiloWatts{it_power_kw}; }
  units::KiloWatts facility_power() const {
    return units::KiloWatts{facility_power_kw};
  }
  units::KiloWattHours brown_energy() const {
    return units::KiloWattHours{brown_kwh};
  }
  units::Usd electricity() const { return units::Usd{electricity_cost}; }
  units::Usd delay() const { return units::Usd{delay_cost}; }
  units::Usd total() const { return units::Usd{total_cost}; }
};

/// Score an allocation; returns an infeasible outcome (objective = +inf)
/// rather than throwing when constraints (7)-(9) are violated, so search
/// algorithms can treat infeasibility uniformly.
SlotOutcome evaluate(const dc::Fleet& fleet, const dc::Allocation& alloc,
                     const SlotInput& input, const SlotWeights& weights);

/// True iff the fleet can serve `lambda` at all under the utilization cap
/// (everything on at top speed), i.e. P3 has a feasible point.
bool slot_feasible(const dc::Fleet& fleet, double lambda, double gamma);

/// The all-off allocation (feasible only when lambda == 0).
dc::Allocation all_off(const dc::Fleet& fleet);

/// Everything on at top speed with load spread in proportion to capacity —
/// the canonical feasible fallback (used for initialization and as the
/// mu = 0 delay-minimizing provisioning).
dc::Allocation all_on_max(const dc::Fleet& fleet, double lambda, double gamma);

/// Minimal capacity expansion for runtime underestimates: starting from a
/// planned allocation whose gamma-capped capacity falls short of `lambda`,
/// wake additional servers proportionally (keeping each group's speed
/// level), then raise still-saturated groups to their top speed, and only
/// then fall back to everything-on.  Loads are cleared; the caller
/// re-balances.  This models what a real cluster manager does when the
/// hour's traffic beats the forecast — it does not power the whole fleet.
dc::Allocation expanded_to_capacity(const dc::Fleet& fleet,
                                    const dc::Allocation& planned,
                                    double lambda, double gamma);

/// Clamp an allocation onto a (possibly smaller) fleet: per group, active
/// servers are capped at the group's server count and the speed level at its
/// top level; loads are cleared for the caller to re-balance.  This is the
/// anytime fallback's "previous slot's allocation rescaled to surviving
/// capacity" (fault injection: deadline overruns, post-outage slots).
dc::Allocation clamped_to_fleet(const dc::Fleet& fleet,
                                const dc::Allocation& planned);

}  // namespace coca::opt
