#include "opt/slot_problem.hpp"

#include <algorithm>
#include <cmath>

namespace coca::opt {

SlotOutcome evaluate(const dc::Fleet& fleet, const dc::Allocation& alloc,
                     const SlotInput& input, const SlotWeights& weights) {
  SlotOutcome out;
  std::string why;
  if (!dc::allocation_feasible(fleet, alloc, weights.gamma, &why)) {
    out.infeasible_reason = why;
    return out;
  }
  const double served = dc::total_load(alloc);
  if (std::abs(served - input.lambda) >
      1e-6 * std::max(1.0, input.lambda) + 1e-6) {
    out.infeasible_reason = "served load does not match lambda (constraint 8)";
    return out;
  }

  // Cost accounting through the typed layer (util/units.hpp): each line is a
  // dimensional identity the compiler checks — kW * h -> kWh,
  // kWh * $/kWh -> $, $/h * h -> $.
  const units::Hours slot = weights.slot_duration();
  const units::KiloWatts it = dc::it_power(fleet, alloc);
  const units::KiloWatts facility = weights.pue * it;
  const units::KiloWattHours brown =
      dc::brown_power(facility, input.onsite_power()) * slot;
  const units::Usd electricity = brown * input.price_per_kwh();
  out.delay_jobs = dc::total_delay_jobs(fleet, alloc);
  const units::Usd delay = units::UsdPerHour{weights.beta * out.delay_jobs} * slot;
  const units::Usd total = electricity + delay;

  out.it_power_kw = it.value();
  out.facility_power_kw = facility.value();
  out.brown_kwh = brown.value();
  out.electricity_cost = electricity.value();
  out.delay_cost = delay.value();
  out.total_cost = total.value();
  // Eq. 16 mixes the Lyapunov weights V and q across units (solver math, not
  // physics) — .value() is the sanctioned boundary.
  out.objective = weights.V * total.value() + weights.q * brown.value() +
                  weights.power_price * facility.value() * slot.value();
  out.feasible = true;
  return out;
}

bool slot_feasible(const dc::Fleet& fleet, double lambda, double gamma) {
  return lambda <= gamma * fleet.max_capacity() * (1.0 + 1e-12);
}

dc::Allocation all_off(const dc::Fleet& fleet) {
  return dc::Allocation(fleet.group_count());
}

dc::Allocation all_on_max(const dc::Fleet& fleet, double lambda, double gamma) {
  dc::Allocation alloc(fleet.group_count());
  const double capacity = fleet.max_capacity();
  if (capacity <= 0.0) return alloc;  // fully failed fleet: nothing to turn on
  for (std::size_t g = 0; g < fleet.group_count(); ++g) {
    const auto& group = fleet.group(g);
    alloc[g].level = group.spec().level_count() - 1;
    alloc[g].active = static_cast<double>(group.server_count());
    // Spread in proportion to capacity: uniform utilization everywhere.
    alloc[g].load = lambda * group.max_capacity() / capacity;
  }
  // Guard against rounding pushing a group over its gamma cap.
  if (lambda > gamma * capacity) {
    for (auto& a : alloc) a.load *= gamma * capacity / lambda;
  }
  return alloc;
}

dc::Allocation expanded_to_capacity(const dc::Fleet& fleet,
                                    const dc::Allocation& planned,
                                    double lambda, double gamma) {
  dc::Allocation alloc = planned;
  for (auto& a : alloc) a.load = 0.0;
  const double target = lambda * (1.0 + 1e-9);

  // Pass 1: wake more servers at the planned speeds, proportionally to the
  // shortfall (plus a whisker of slack for rounding).
  double capacity = dc::capped_capacity(fleet, alloc, gamma);
  if (capacity < target && capacity > 0.0) {
    const double factor = target / capacity * (1.0 + 1e-6);
    for (std::size_t g = 0; g < alloc.size(); ++g) {
      const double servers =
          static_cast<double>(fleet.group(g).server_count());
      if (alloc[g].active <= 0.0) continue;
      alloc[g].active = std::min(servers, std::ceil(alloc[g].active * factor));
    }
    capacity = dc::capped_capacity(fleet, alloc, gamma);
  }

  // Pass 2: groups already fully on move to their top speed.
  if (capacity < target) {
    for (std::size_t g = 0; g < alloc.size(); ++g) {
      const auto& group = fleet.group(g);
      if (alloc[g].active >=
          static_cast<double>(group.server_count()) * (1.0 - 1e-12)) {
        alloc[g].level = group.spec().level_count() - 1;
      }
    }
    capacity = dc::capped_capacity(fleet, alloc, gamma);
  }

  // Pass 3: wake sleeping groups (at top speed) until capacity suffices.
  if (capacity < target) {
    for (std::size_t g = 0; g < alloc.size() && capacity < target; ++g) {
      const auto& group = fleet.group(g);
      const double servers = static_cast<double>(group.server_count());
      if (alloc[g].active >= servers) continue;
      const std::size_t top = group.spec().level_count() - 1;
      const double per = gamma * group.spec().level(top).service_rate;
      const double have = gamma *
                          group.spec().level(alloc[g].level).service_rate *
                          alloc[g].active;
      const double need = std::min(
          servers, std::ceil((target - capacity + have) / std::max(per, 1e-12)));
      if (need > alloc[g].active || top != alloc[g].level) {
        capacity -= have;
        alloc[g].level = top;
        alloc[g].active = std::max(alloc[g].active, need);
        capacity += per * alloc[g].active;
      }
    }
  }
  return alloc;
}

dc::Allocation clamped_to_fleet(const dc::Fleet& fleet,
                                const dc::Allocation& planned) {
  dc::Allocation alloc(fleet.group_count());
  const std::size_t groups = std::min(planned.size(), fleet.group_count());
  for (std::size_t g = 0; g < groups; ++g) {
    const auto& group = fleet.group(g);
    alloc[g].level =
        std::min(planned[g].level, group.spec().level_count() - 1);
    alloc[g].active = std::min(
        planned[g].active, static_cast<double>(group.server_count()));
    alloc[g].load = 0.0;  // the caller re-balances over the clamped capacity
  }
  return alloc;
}

}  // namespace coca::opt
