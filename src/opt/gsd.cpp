#include "opt/gsd.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/thread_pool.hpp"

namespace coca::opt {
namespace {

/// Deterministic merge order: feasibility first, then lower best objective;
/// ties keep the earlier chain.  Comparing chain results in ascending chain
/// id with a strict `better` makes the winner independent of thread count.
bool better(const GsdResult& a, const GsdResult& b) {
  if (a.best.feasible != b.best.feasible) return a.best.feasible;
  return a.best.outcome.objective < b.best.outcome.objective;
}

}  // namespace

double GsdSolver::acceptance_probability(double delta,
                                         double explored_objective,
                                         double kept_objective) {
  // u = exp(d/ge) / (exp(d/ge) + exp(d/gk)) = logistic(d*(1/ge - 1/gk)).
  // Objectives are strictly positive for feasible decisions (Appendix A);
  // guard the degenerate cases anyway.
  if (!std::isfinite(explored_objective)) return 0.0;
  if (!std::isfinite(kept_objective)) return 1.0;
  const double ge = std::max(explored_objective, 1e-300);
  const double gk = std::max(kept_objective, 1e-300);
  const double exponent = delta * (1.0 / ge - 1.0 / gk);
  if (exponent > 700.0) return 1.0;
  if (exponent < -700.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-exponent));
}

GsdResult GsdSolver::solve(const dc::Fleet& fleet, const SlotInput& input,
                           const SlotWeights& weights,
                           std::optional<dc::Allocation> initial) const {
  const int chains = std::max(1, config_.chains);
  if (chains == 1) {
    GsdResult result = [&] {
      const obs::ScopedSpan chain_span("gsd_chain[0]");
      return solve_chain(fleet, input, weights, initial, config_.seed);
    }();
    obs::count("gsd.solves");
    obs::count("gsd.evaluations", result.evaluations);
    obs::count("gsd.accepted", result.accepted);
    return result;
  }

  // Chain c draws from the deterministically derived stream seed ^ c, so
  // chain 0 reproduces the single-chain run and the chain set is a pure
  // function of the config.
  //
  // Capture the dispatching thread's span path so chain spans keep their
  // place in the hierarchy whether run_chain executes inline (threads<=1)
  // or on a pool worker — profile paths and counts must not depend on the
  // thread count.
  const std::string span_parent = obs::current_span_path();
  std::vector<GsdResult> per_chain(static_cast<std::size_t>(chains));
  auto run_chain = [&](std::size_t c) {
    std::string chain_name = "gsd_chain[";
    chain_name += std::to_string(c);
    chain_name += ']';
    const obs::ScopedSpan chain_span(chain_name, span_parent);
    per_chain[c] =
        solve_chain(fleet, input, weights, initial,
                    config_.seed ^ static_cast<std::uint64_t>(c));
  };
  const std::size_t hardware =
      std::max(1u, std::thread::hardware_concurrency());
  const std::size_t threads =
      config_.threads > 0 ? static_cast<std::size_t>(config_.threads)
                          : std::min(static_cast<std::size_t>(chains), hardware);
  if (threads <= 1) {
    for (std::size_t c = 0; c < per_chain.size(); ++c) run_chain(c);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(per_chain.size(), run_chain);
  }

  // Merge in ascending chain order — never completion order.
  std::size_t winner = 0;
  for (std::size_t c = 1; c < per_chain.size(); ++c) {
    if (better(per_chain[c], per_chain[winner])) winner = c;
  }
  GsdResult merged = per_chain[winner];
  merged.evaluations = 0;
  merged.accepted = 0;
  merged.lp_stats = LoadLpStats{};
  for (const auto& chain : per_chain) {
    merged.evaluations += chain.evaluations;
    merged.accepted += chain.accepted;
    merged.lp_stats.solves += chain.lp_stats.solves;
    merged.lp_stats.warm += chain.lp_stats.warm;
    merged.lp_stats.cold += chain.lp_stats.cold;
    merged.lp_stats.memo_hits += chain.lp_stats.memo_hits;
    merged.lp_stats.regime_flips += chain.lp_stats.regime_flips;
    merged.lp_stats.nu_iterations += chain.lp_stats.nu_iterations;
  }
  merged.chains_run = chains;
  merged.winning_chain = static_cast<int>(winner);
  obs::count("gsd.solves");
  obs::count("gsd.evaluations", merged.evaluations);
  obs::count("gsd.accepted", merged.accepted);
  return merged;
}

GsdResult GsdSolver::solve_chain(const dc::Fleet& fleet, const SlotInput& input,
                                 const SlotWeights& weights,
                                 const std::optional<dc::Allocation>& initial,
                                 std::uint64_t seed) const {
  GsdResult result;
  util::Rng rng(seed);

  // The chain's incremental load-LP engine: caches the dual point and the
  // SoA response terms across candidate solves (one context per chain keeps
  // the cache state — and so the warm/cold span counts — deterministic at
  // any thread count).  It emits the load_lp_warm / load_lp_cold spans.
  LoadLpContext lp(fleet, config_.lp_policy);

  // Initialization (line 1): a feasible starting configuration.
  dc::Allocation kept =
      initial.value_or(all_on_max(fleet, input.lambda, weights.gamma));
  auto kept_balance = lp.solve(kept, input, weights);
  ++result.evaluations;
  double kept_objective = kept_balance.outcome.objective;

  dc::Allocation explored = kept;  // the exploration state x^e
  SlotSolution best;
  best.alloc = kept;
  best.outcome = kept_balance.outcome;
  best.regime = kept_balance.regime;
  best.effective_price = kept_balance.effective_price;
  best.feasible = kept_balance.feasible;

  double delta = config_.adaptive ? config_.delta_initial : config_.delta;
  if (config_.record_trajectory) result.trajectory.reserve(config_.iterations);

  for (int iter = 0; iter < config_.iterations; ++iter) {
    const obs::ScopedSpan iter_span("sweep_iter");
    // Line 2: evaluate the exploration only if it can carry the workload.
    const double explored_capacity =
        dc::capped_capacity(fleet, explored, weights.gamma);
    if (explored_capacity >= input.lambda * (1.0 - 1e-12)) {
      // Line 3: optimal load distribution for the explored speeds.
      dc::Allocation candidate = explored;
      const auto balanced = lp.solve(candidate, input, weights);
      ++result.evaluations;
      const double explored_objective = balanced.outcome.objective;

      // Lines 4-5: two-point Gibbs acceptance.
      const double u =
          acceptance_probability(delta, explored_objective, kept_objective);
      if (rng.bernoulli(u)) {
        kept = candidate;
        kept_objective = explored_objective;
        ++result.accepted;
        if (balanced.feasible && explored_objective < best.outcome.objective) {
          best.alloc = candidate;
          best.outcome = balanced.outcome;
          best.regime = balanced.regime;
          best.effective_price = balanced.effective_price;
          best.feasible = true;
        }
      } else {
        explored = kept;  // abandon the exploration (line 5, else branch)
      }
    }
    // Note: when the exploration cannot carry the workload (line 2 fails),
    // lines 3-5 are skipped but x^e is *not* reset — line 7 keeps mutating
    // it, so the chain can climb out of an infeasible region (e.g. an
    // all-at-lowest-speed initial point) one group at a time.

    // Line 7: a random group explores a random speed configuration.
    const std::size_t g = rng.uniform_index(fleet.group_count());
    const auto& group = fleet.group(g);
    const std::size_t level_options = group.spec().level_count();
    // Option 0 = off; otherwise a level plus a quantized active count.
    const std::size_t option = rng.uniform_index(level_options + 1);
    if (option == 0) {
      explored[g].level = 0;
      explored[g].active = 0.0;
    } else {
      const std::size_t level = option - 1;
      const int steps = std::max(1, config_.count_steps);
      const double chunk = std::ceil(static_cast<double>(group.server_count()) /
                                     static_cast<double>(steps));
      const auto step = rng.uniform_index(static_cast<std::uint64_t>(steps)) + 1;
      explored[g].level = level;
      explored[g].active =
          std::min(static_cast<double>(group.server_count()),
                   chunk * static_cast<double>(step));
    }

    if (config_.adaptive) delta *= config_.delta_growth;
    if (config_.record_trajectory) result.trajectory.push_back(kept_objective);
  }

  // Line 8: return the kept configuration (we also expose the incumbent) —
  // an exact memo hit in the engine, not a re-solve.
  auto final_balance = lp.solve(kept, input, weights);
  result.solution.alloc = kept;
  result.solution.outcome = final_balance.outcome;
  result.solution.regime = final_balance.regime;
  result.solution.effective_price = final_balance.effective_price;
  result.solution.feasible = final_balance.feasible;
  result.best = best;
  result.lp_stats = lp.stats();
  return result;
}

}  // namespace coca::opt
