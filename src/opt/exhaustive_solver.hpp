#pragma once
// Ground-truth solver for small instances: enumerate every (level, active
// count) combination across groups, balance loads optimally for each, and
// return the global minimizer of the P3 objective.  Exponential in the group
// count — intended for tests and for validating LadderSolver and GSD, not
// for production fleets.

#include <cstddef>

#include "opt/ladder_solver.hpp"

namespace coca::opt {

struct ExhaustiveConfig {
  /// Safety valve: refuse instances with more than this many configurations.
  std::size_t max_configurations = 2'000'000;
};

class ExhaustiveSolver {
 public:
  explicit ExhaustiveSolver(ExhaustiveConfig config = {}) : config_(config) {}

  /// Globally optimal slot solution over integer counts; throws
  /// std::invalid_argument if the configuration space exceeds the cap.
  SlotSolution solve(const dc::Fleet& fleet, const SlotInput& input,
                     const SlotWeights& weights) const;

  /// Number of configurations enumeration would visit.
  static std::size_t configuration_count(const dc::Fleet& fleet);

 private:
  ExhaustiveConfig config_;
};

}  // namespace coca::opt
