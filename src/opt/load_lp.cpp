#include "opt/load_lp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "obs/span.hpp"
#include "util/solvers.hpp"

namespace coca::opt {
namespace {

constexpr double kTiny = 1e-12;  // matches load_balancer.cpp

// Positive floor for the masked-out lanes of the response kernel: selected
// lanes (nu above the activation threshold) always have nu - mu*c >
// V*beta/x >> this, so flooring never perturbs a selected value; it only
// keeps the speculative divide on unselected lanes well defined.
constexpr double kDenomFloor = std::numeric_limits<double>::min();

// The memo's value is recency-driven (GSD revisits the kept configuration
// and near-past flips), so a small pool that stays resident in L2 beats a
// large one: store/probe touch hot lines instead of missing on every row.
constexpr std::size_t kMemoCapacity = 64;
constexpr std::size_t kMemoSlots = 256;  // power of two, 4x capacity

std::uint64_t fnv1a_alloc(const dc::Allocation& alloc) {
  // Four-lane FNV-1a over the allocation's interleaved (level, active)
  // doubles — the same word stream memo entries store as their key —
  // fused so the per-solve probe needs no materialised key.
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h[4] = {1469598103934665603ull, 0x9e3779b97f4a7c15ull,
                        0xc2b2ae3d27d4eb4full, 0x165667b19e3779f9ull};
  const std::size_t groups = alloc.size();
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2) {
    const double d0 = static_cast<double>(alloc[g].level);
    const double d1 = alloc[g].active;
    const double d2 = static_cast<double>(alloc[g + 1].level);
    const double d3 = alloc[g + 1].active;
    std::uint64_t w[4];
    std::memcpy(&w[0], &d0, sizeof(double));
    std::memcpy(&w[1], &d1, sizeof(double));
    std::memcpy(&w[2], &d2, sizeof(double));
    std::memcpy(&w[3], &d3, sizeof(double));
    for (int k = 0; k < 4; ++k) h[k] = (h[k] ^ w[k]) * kPrime;
  }
  if (g < groups) {  // odd group count: the two tail words fold into lane 0
    const double d0 = static_cast<double>(alloc[g].level);
    const double d1 = alloc[g].active;
    std::uint64_t w0 = 0;
    std::uint64_t w1 = 0;
    std::memcpy(&w0, &d0, sizeof(double));
    std::memcpy(&w1, &d1, sizeof(double));
    h[0] = (h[0] ^ w0) * kPrime;
    h[0] = (h[0] ^ w1) * kPrime;
  }
  std::uint64_t hash = h[0];
  for (int k = 1; k < 4; ++k) hash = (hash ^ h[k]) * kPrime;
  return hash;
}

}  // namespace

LoadLpContext::LoadLpContext(const dc::Fleet& fleet, LoadLpPolicy policy)
    : fleet_(&fleet), policy_(policy) {
  const std::size_t groups = fleet.group_count();
  level_offset_.assign(groups + 1, 0);
  for (std::size_t g = 0; g < groups; ++g) {
    level_offset_[g + 1] = level_offset_[g] + fleet.group(g).spec().level_count();
  }
  const std::size_t slots = level_offset_[groups];
  rate_table_.assign(slots, 0.0);
  dyn_slope_table_.assign(slots, 0.0);
  dyn_kw_table_.assign(slots, 0.0);
  static_table_.assign(groups, 0.0);
  server_count_.assign(groups, 0.0);
  for (std::size_t g = 0; g < groups; ++g) {
    const auto& spec = fleet.group(g).spec();
    for (std::size_t k = 0; k < spec.level_count(); ++k) {
      rate_table_[level_offset_[g] + k] = spec.level(k).service_rate;
      dyn_slope_table_[level_offset_[g] + k] = spec.dynamic_slope(k);
      dyn_kw_table_[level_offset_[g] + k] = spec.level(k).dynamic_power_kw;
    }
    static_table_[g] = spec.static_power_kw();
    server_count_[g] = static_cast<double>(fleet.group(g).server_count());
  }
  slope_table_.assign(slots, 0.0);
  cap_table_.assign(slots, 0.0);
  bracket_denom_table_.assign(slots, 0.0);
  cls_group_.reserve(groups);
  for (auto* v : {&cls_rate_, &cls_slope_, &cls_active_, &cls_cap_, &cls_denom_,
                  &cls_stat_, &cls_dyn_, &cls_ms_, &cls_thr_, &cls_vbr_,
                  &cls_ivbr_,
                  &cls_resp_, &cls_load_}) {
    v->reserve(groups);
  }
  memo_slots_.assign(kMemoSlots, -1);
}

void LoadLpContext::invalidate() {
  cache_valid_ = false;
  cls_key_.clear();  // force a full class rebuild on the next solve
  dirty_.clear();
  dirty_all_ = true;
  seed_valid_ = false;
  memo_clear();
}

void LoadLpContext::refresh_tables(const SlotWeights& weights) {
  if (weights.pue == tables_pue_ && weights.gamma == tables_gamma_) return;
  const double one_minus_gamma = 1.0 - weights.gamma;
  for (std::size_t i = 0; i < rate_table_.size(); ++i) {
    // Identical expressions to active_classes()/the reference bracket, so
    // the cached values are bit-identical to what the reference recomputes.
    slope_table_[i] = weights.pue * dyn_slope_table_[i];
    cap_table_[i] = weights.gamma * rate_table_[i];
    bracket_denom_table_[i] = rate_table_[i] * one_minus_gamma * one_minus_gamma;
  }
  tables_pue_ = weights.pue;
  tables_gamma_ = weights.gamma;
}

bool LoadLpContext::try_patch_classes(const dc::Allocation& alloc) {
  const std::size_t groups = alloc.size();
  if (cls_key_.size() != 2 * groups) return false;
  int patched = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const double lv = static_cast<double>(alloc[g].level);
    const double ac = alloc[g].active;
    if (cls_key_[2 * g] == lv && cls_key_[2 * g + 1] == ac) continue;
    // Under the warm policy a group joining or leaving the active set is an
    // ordinary patch: the lane flips between its live tables and the dead
    // template.  The canonical policy compacts dead lanes away (its
    // bisection pays ~33 gap evaluations per solve, so a shorter lane array
    // beats patchability) and rebuilds on membership flips instead.  Large
    // diffs: rebuilding is cheaper.
    const bool was_in = cls_key_[2 * g + 1] > kTiny;
    const bool now_in = ac > kTiny;
    if (was_in != now_in && policy_ != LoadLpPolicy::kWarmStart) return false;
    if (was_in || now_in) {
      if (++patched > 8) return false;
      const std::int32_t i = cls_index_[g];
      if (seed_valid_) {
        // Remove the lane's old contribution at the seed price.  cls_resp_
        // still holds the response the seed capture evaluated — unless this
        // lane already has a pending patch (no evaluation in between), in
        // which case the lane is stale and the seed can't be maintained.
        bool pending = false;
        for (const std::int32_t d : dirty_) pending = pending || (d == i);
        if (pending) {
          seed_valid_ = false;
        } else {
          seed_delta_ -= cls_active_[i] * cls_resp_[i];
          seed_gdelta_ -= cls_gl_[i];
        }
      }
      if (now_in) {
        const std::size_t slot = level_offset_[g] + alloc[g].level;
        // Same expressions as the full build: the patched lane is
        // bit-identical to what a rebuild would write.
        cls_rate_[i] = rate_table_[slot];
        cls_slope_[i] = slope_table_[slot];
        cls_active_[i] = ac;
        cls_cap_[i] = cap_table_[slot];
        cls_denom_[i] = bracket_denom_table_[slot];
        cls_stat_[i] = static_table_[g];
        cls_dyn_[i] = dyn_kw_table_[slot];
      } else {
        cls_rate_[i] = 0.0;
        cls_slope_[i] = 0.0;
        cls_active_[i] = 0.0;
        cls_cap_[i] = 0.0;
        cls_denom_[i] = std::numeric_limits<double>::infinity();
        cls_stat_[i] = 0.0;
        cls_dyn_[i] = 0.0;
      }
      capacity_ready_ = false;
      if (!dirty_all_) dirty_.push_back(i);
    }
    cls_key_[2 * g] = lv;
    cls_key_[2 * g + 1] = ac;
  }
  return true;
}

void LoadLpContext::build_classes(const dc::Allocation& alloc,
                                  const SlotWeights& weights) {
  if (classes_ready_) return;  // same alloc/weights for the whole solve()
  const bool tables_fresh =
      weights.pue == tables_pue_ && weights.gamma == tables_gamma_;
  refresh_tables(weights);
  if (tables_fresh && try_patch_classes(alloc)) return;
  cls_key_.clear();
  dirty_.clear();
  dirty_all_ = true;
  seed_valid_ = false;
  capacity_ready_ = false;
  cls_group_.clear();
  cls_rate_.clear();
  cls_slope_.clear();
  cls_active_.clear();
  cls_cap_.clear();
  cls_denom_.clear();
  cls_stat_.clear();
  cls_dyn_.clear();
  cls_index_.assign(alloc.size(), -1);
  cls_key_.resize(2 * alloc.size());
  for (std::size_t g = 0; g < alloc.size(); ++g) {
    cls_key_[2 * g] = static_cast<double>(alloc[g].level);
    cls_key_[2 * g + 1] = alloc[g].active;
    if (alloc[g].active <= kTiny) {
      if (policy_ == LoadLpPolicy::kWarmStart) {
        // Dead lane for an inactive group: zeroed tables make every kernel
        // contribution an exact +0.0 and the bracket scans see thr = +inf /
        // hib = 0, so the lane is bitwise-invisible to the solve — while
        // membership changes stay patchable instead of forcing a rebuild
        // (which would also drop the warm seed).  The canonical policy
        // compacts them away; see try_patch_classes.
        cls_index_[g] = static_cast<std::int32_t>(cls_group_.size());
        cls_group_.push_back(g);
        cls_rate_.push_back(0.0);
        cls_slope_.push_back(0.0);
        cls_active_.push_back(0.0);
        cls_cap_.push_back(0.0);
        cls_denom_.push_back(std::numeric_limits<double>::infinity());
        cls_stat_.push_back(0.0);
        cls_dyn_.push_back(0.0);
      }
      continue;
    }
    cls_index_[g] = static_cast<std::int32_t>(cls_group_.size());
    cls_group_.push_back(g);
    const std::size_t slot = level_offset_[g] + alloc[g].level;
    cls_rate_.push_back(rate_table_[slot]);
    cls_slope_.push_back(slope_table_[slot]);
    cls_active_.push_back(alloc[g].active);
    cls_cap_.push_back(cap_table_[slot]);
    cls_denom_.push_back(bracket_denom_table_[slot]);
    cls_stat_.push_back(static_table_[g]);
    cls_dyn_.push_back(dyn_kw_table_[slot]);
  }
  const std::size_t n = cls_group_.size();
  cls_ms_.resize(n);
  cls_thr_.resize(n);
  cls_vbr_.resize(n);
  cls_ivbr_.resize(n);
  cls_hib_.resize(n);
  cls_resp_.resize(n);
  cls_gl_.resize(n);
  cls_load_.resize(n);
}

double LoadLpContext::built_capacity() {
  if (!capacity_ready_) {
    // The reference's in-order reduction: reused verbatim by every consumer
    // so the feasibility predicate sees one set of bits.
    double capacity = 0.0;
    for (std::size_t i = 0; i < cls_group_.size(); ++i) {
      capacity += cls_active_[i] * cls_cap_[i];
    }
    built_capacity_ = capacity;
    capacity_ready_ = true;
  }
  return built_capacity_;
}

double LoadLpContext::supply_gap(double nu, double lambda) {
  const std::size_t n = cls_group_.size();
  const double* ms = cls_ms_.data();
  const double* thr = cls_thr_.data();
  const double* vbr = cls_vbr_.data();
  const double* rate = cls_rate_.data();
  const double* cap = cls_cap_.data();
  double* resp = cls_resp_.data();
  // Element-wise best response a(nu) = clamp(x - sqrt(V*beta*x/(nu - mu*c)),
  // 0, gamma*x) over contiguous arrays: no branches in the loop body, so the
  // divide/sqrt vectorize; the select reproduces the reference's threshold
  // branch bit-for-bit (unselected lanes are exactly 0).
  for (std::size_t i = 0; i < n; ++i) {
    const double denom = std::max(nu - ms[i], kDenomFloor);
    double a = rate[i] - std::sqrt(vbr[i] / denom);
    a = std::min(std::max(a, 0.0), cap[i]);
    resp[i] = nu > thr[i] ? a : 0.0;
  }
  // The market-clearing sum stays a scalar in-order reduction: FP addition
  // is not associative and the reference accumulates in class order.
  double total = 0.0;
  const double* active = cls_active_.data();
  for (std::size_t i = 0; i < n; ++i) total += active[i] * resp[i];
  return total - lambda;
}

double LoadLpContext::supply_gap_grad(double nu, double lambda, double& grad) {
  const std::size_t n = cls_group_.size();
  const double* ms = cls_ms_.data();
  const double* thr = cls_thr_.data();
  const double* vbr = cls_vbr_.data();
  const double* rate = cls_rate_.data();
  const double* cap = cls_cap_.data();
  const double* active = cls_active_.data();
  double* resp = cls_resp_.data();
  // Same response expressions as supply_gap (bit-identical resp lanes), plus
  // the analytic derivative d(resp)/dnu = s / (2 * denom) with
  // s = sqrt(vbr / denom) — the sqrt is already paid for the response, so
  // the gradient lane costs one divide.  Clamped and unselected lanes have
  // zero slope.
  double* gl = cls_gl_.data();
  const double* ivbr = cls_ivbr_.data();
  for (std::size_t i = 0; i < n; ++i) {
    const double denom = std::max(nu - ms[i], kDenomFloor);
    const double q = vbr[i] / denom;
    const double s = std::sqrt(q);
    const double raw = rate[i] - s;
    const double a = std::min(std::max(raw, 0.0), cap[i]);
    const bool on = nu > thr[i];
    resp[i] = on ? a : 0.0;
    // Non-short-circuit select: keeps the loop free of control flow so it
    // vectorizes alongside the response lanes.  The slope s/(2*denom) is
    // rewritten divide-free as 0.5*s*q/vbr via the precomputed reciprocal
    // (s/denom == s*q/vbr exactly in the reals): the gradient only steers
    // Newton iterates, so the rounding difference is irrelevant, and the
    // loop drops from three divider-unit ops per lane to two.  Dead lanes
    // (vbr == 0, ivbr == inf) evaluate 0*inf = NaN in the unselected arm,
    // which the select discards.
    const bool sloped = on & (raw > 0.0) & (raw < cap[i]);
    gl[i] = sloped ? active[i] * (0.5 * s * q * ivbr[i]) : 0.0;
  }
  // The reductions here only steer the warm Newton iterates (the canonical
  // path reduces in class order inside supply_gap), so four partial sums
  // break the serial FP dependency chain; the iterate lands within ulps of
  // the in-order sum, well inside the clearing tolerance.
  double g0 = 0.0, g1 = 0.0, g2 = 0.0, g3 = 0.0;
  double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    g0 += gl[i];
    g1 += gl[i + 1];
    g2 += gl[i + 2];
    g3 += gl[i + 3];
    t0 += active[i] * resp[i];
    t1 += active[i + 1] * resp[i + 1];
    t2 += active[i + 2] * resp[i + 2];
    t3 += active[i + 3] * resp[i + 3];
  }
  double g = (g0 + g1) + (g2 + g3);
  double total = (t0 + t1) + (t2 + t3);
  for (; i < n; ++i) {
    g += gl[i];
    total += active[i] * resp[i];
  }
  grad = g;
  return total - lambda;
}

void LoadLpContext::settle_residual(double lambda) {
  // Mirrors the reference settle_residual pass-for-pass.
  const std::size_t n = cls_group_.size();
  for (int pass = 0; pass < 4; ++pass) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += cls_load_[i];
    const double residual = lambda - total;
    if (std::abs(residual) <= 1e-9 * std::max(1.0, lambda)) return;
    if (residual > 0.0) {
      double headroom = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        headroom += cls_active_[i] * cls_cap_[i] - cls_load_[i];
      }
      if (headroom <= kTiny) return;
      for (std::size_t i = 0; i < n; ++i) {
        const double room = cls_active_[i] * cls_cap_[i] - cls_load_[i];
        cls_load_[i] += residual * room / headroom;
      }
    } else {
      const double shrink = lambda / std::max(total, kTiny);
      for (std::size_t i = 0; i < n; ++i) cls_load_[i] *= shrink;
    }
  }
}

void LoadLpContext::greedy_fill(double lambda, double mu) {
  const std::size_t n = cls_group_.size();
  // Only live lanes enter the sort: the input sequence then matches the
  // reference's class list element-for-element, so the (unstable) sort
  // produces the identical permutation and the identical fill order.
  order_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (cls_active_[i] > kTiny) order_.push_back(i);
  }
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    return mu * cls_slope_[a] < mu * cls_slope_[b];
  });
  double remaining = lambda;
  for (std::size_t idx : order_) {
    const double cap = cls_active_[idx] * cls_cap_[idx];
    const double take = std::min(cap, remaining);
    cls_load_[idx] = take;
    remaining -= take;
    if (remaining <= 0.0) break;
  }
}

void LoadLpContext::scatter_loads(dc::Allocation& alloc) const {
  for (std::size_t i = 0; i < cls_group_.size(); ++i) {
    alloc[cls_group_[i]].load = cls_load_[i];
  }
}

double LoadLpContext::solve_linear_built(double lambda, double mu,
                                         const SlotWeights& weights,
                                         double warm_nu) {
  const std::size_t n = cls_group_.size();
  if (built_capacity() < lambda * (1.0 - 1e-9)) return -1.0;

  for (std::size_t i = 0; i < n; ++i) cls_load_[i] = 0.0;
  const double v_beta = weights.V * weights.beta;
  double nu = 0.0;
  if (v_beta <= kTiny) {
    greedy_fill(lambda, mu);
    seed_valid_ = false;  // loads set directly; no dual point to seed from
  } else {
    // Per-solve invariants, hoisted out of the bisection.  They depend only
    // on (class tables, mu, V*beta), so after a single-group patch at an
    // unchanged price only the dirty lanes recompute; the bracket bounds are
    // then a divide-free min/max scan.  min/max are order-insensitive, so
    // the scan is bit-identical to the reference's fused loop.
    // The seed is usable only when the gap function is unchanged apart from
    // the patched lanes: same invariants (mu, V*beta), same lambda, and a
    // positive captured gradient for the Newton step.
    const bool inv_fresh = !dirty_all_ && mu == inv_mu_ && v_beta == inv_vbeta_;
    const bool seed_ok = policy_ == LoadLpPolicy::kWarmStart && seed_valid_ &&
                         inv_fresh && lambda == seed_lambda_ &&
                         seed_grad_ > 0.0;
    if (dirty_all_ || !(mu == inv_mu_ && v_beta == inv_vbeta_)) {
      for (std::size_t i = 0; i < n; ++i) {
        cls_ms_[i] = mu * cls_slope_[i];
        cls_thr_[i] = cls_ms_[i] + v_beta / cls_rate_[i];
        cls_vbr_[i] = v_beta * cls_rate_[i];
        cls_ivbr_[i] = 1.0 / cls_vbr_[i];
        cls_hib_[i] = cls_ms_[i] + v_beta / cls_denom_[i];
      }
      dirty_all_ = false;
      inv_mu_ = mu;
      inv_vbeta_ = v_beta;
    } else {
      for (const std::int32_t i : dirty_) {
        cls_ms_[i] = mu * cls_slope_[i];
        cls_thr_[i] = cls_ms_[i] + v_beta / cls_rate_[i];
        cls_vbr_[i] = v_beta * cls_rate_[i];
        cls_ivbr_[i] = 1.0 / cls_vbr_[i];
        cls_hib_[i] = cls_ms_[i] + v_beta / cls_denom_[i];
      }
    }
    if (seed_ok) {
      // Add the patched lanes' new contributions at the seed price (their
      // invariants were just refreshed above).  Same response expressions as
      // supply_gap; exactness is irrelevant here — this only steers the
      // Newton starting iterate.
      for (const std::int32_t i : dirty_) {
        const double denom = std::max(seed_nu_ - cls_ms_[i], kDenomFloor);
        const double s = std::sqrt(cls_vbr_[i] / denom);
        const double raw = cls_rate_[i] - s;
        const double a = std::min(std::max(raw, 0.0), cls_cap_[i]);
        const bool on = seed_nu_ > cls_thr_[i];
        seed_delta_ += cls_active_[i] * (on ? a : 0.0);
        const bool sloped = on && raw > 0.0 && raw < cls_cap_[i];
        seed_gdelta_ += sloped ? cls_active_[i] * (s / (2.0 * denom)) : 0.0;
      }
    }
    dirty_.clear();
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      lo = std::min(lo, cls_thr_[i]);
      hi = std::max(hi, cls_hib_[i]);
    }
    hi = hi * (1.0 + 1e-9) + kTiny;
    util::BisectionOptions options;
    options.x_tol = std::max(1e-14, (hi - lo) * 1e-13);
    options.f_tol = 1e-9 * std::max(1.0, lambda);
    options.max_iterations = 200;
    double last_eval = std::numeric_limits<double>::quiet_NaN();
    double last_fx = 0.0;
    double last_grad = 0.0;
    bool cleared = false;
    if (policy_ == LoadLpPolicy::kWarmStart && warm_nu > 0.0) {
      // Bracket-safeguarded Newton from the cached clearing price.  The gap
      // is monotone nondecreasing in nu, so each iterate shrinks the
      // canonical bracket; the Newton step (analytic derivative from the
      // fused kernel) converges in a few evaluations from a single-flip-away
      // start, and any step that leaves the bracket degrades to a midpoint.
      // Same f_tol clearing criterion as the canonical bisection.
      double a = lo;
      double b = hi;
      double x = std::min(std::max(warm_nu, lo), hi);
      if (seed_ok) {
        // One Newton step taken analytically, before any gap evaluation:
        // seed_fx_ + seed_delta_ is the gap at seed_nu_ under the *patched*
        // classes (up to reduction-order ulps), and the gradient gets the
        // same per-lane correction.
        const double g = seed_grad_ + seed_gdelta_;
        if (g > 0.0) {
          const double step = seed_nu_ - (seed_fx_ + seed_delta_) / g;
          if (step > lo && step < hi) x = step;
        }
      }
      for (int i = 0; i < options.max_iterations; ++i) {
        double grad = 0.0;
        const double fx = supply_gap_grad(x, lambda, grad);
        last_eval = x;
        last_fx = fx;
        last_grad = grad;
        ++stats_.nu_iterations;
        if (std::abs(fx) <= options.f_tol) {
          cleared = true;
          break;
        }
        if (fx < 0.0) {
          a = x;
        } else {
          b = x;
        }
        if ((b - a) <= options.x_tol) {
          cleared = true;
          break;
        }
        const double step = grad > 0.0 ? x - fx / grad : a;
        x = (step > a && step < b) ? step : 0.5 * (a + b);
      }
      nu = x;
      cleared = true;  // max_iterations exhausts to the last iterate
    }
    if (!cleared) {
      auto gap = [&](double price) { return supply_gap(price, lambda); };
      const auto result = util::bisect(gap, lo, hi, options);
      stats_.nu_iterations += result.iterations;
      nu = result.x;
    }
    // Leave cls_resp_ at the clearing price.  When the last gap evaluation
    // was already at nu (the Newton loop always ends there) the arrays hold
    // exactly the values a re-evaluation would write — skip it.  The
    // canonical branch always re-evaluates (reference order).  Under the
    // warm policy, re-arm the analytic seed at this clearing: the Newton
    // break already has (fx, grad); the canonical refresh swaps supply_gap
    // for supply_gap_grad, whose response lanes are the identical
    // expressions (bit-for-bit the same cls_resp_), to pick up the gradient.
    seed_valid_ = false;
    seed_delta_ = 0.0;
    seed_gdelta_ = 0.0;
    if (cleared && last_eval == nu) {
      if (policy_ == LoadLpPolicy::kWarmStart && last_grad > 0.0) {
        seed_valid_ = true;
        seed_nu_ = nu;
        seed_fx_ = last_fx;
        seed_grad_ = last_grad;
        seed_lambda_ = lambda;
      }
    } else if (policy_ == LoadLpPolicy::kWarmStart) {
      double grad = 0.0;
      const double fx = supply_gap_grad(nu, lambda, grad);
      if (grad > 0.0) {
        seed_valid_ = true;
        seed_nu_ = nu;
        seed_fx_ = fx;
        seed_grad_ = grad;
        seed_lambda_ = lambda;
      }
    } else {
      supply_gap(nu, lambda);
    }
    for (std::size_t i = 0; i < n; ++i) {
      cls_load_[i] = cls_active_[i] * cls_resp_[i];
    }
  }
  settle_residual(lambda);
  return nu;
}

double LoadLpContext::solve_linear(dc::Allocation& alloc, double lambda,
                                   double mu, const SlotWeights& weights) {
  for (auto& a : alloc) a.load = 0.0;
  if (lambda <= kTiny) return 0.0;
  build_classes(alloc, weights);
  const double nu = solve_linear_built(lambda, mu, weights, 0.0);
  if (nu < 0.0) return nu;
  scatter_loads(alloc);
  return nu;
}

SlotOutcome LoadLpContext::outcome_at(const dc::Allocation& alloc,
                                      const SlotInput& input,
                                      const SlotWeights& weights) const {
  // See the declaration comment: this mirrors opt::evaluate() check-for-
  // check and expression-for-expression over the flat tables; every early
  // exit routes through the reference so diagnostics (and throws) stay
  // exactly the reference's.
  const std::size_t groups = alloc.size();
  if (groups != fleet_->group_count() || weights.gamma <= 0.0 ||
      weights.gamma >= 1.0) {
    return evaluate(*fleet_, alloc, input, weights);
  }
  constexpr double kTol = 1e-6;
  for (std::size_t g = 0; g < groups; ++g) {
    const auto& a = alloc[g];
    if (a.level >= level_offset_[g + 1] - level_offset_[g] ||
        a.active < 0.0 || a.active > server_count_[g] * (1.0 + 1e-9) ||
        a.load < 0.0) {
      // Includes the reference-legal tolerance slivers (e.g. active in
      // [-1e-6, 0)) where evaluate()'s own power model would throw — the
      // reference path reproduces that behavior exactly.
      return evaluate(*fleet_, alloc, input, weights);
    }
    const double rate = rate_table_[level_offset_[g] + a.level];
    const double cap = weights.gamma * rate * std::max(0.0, a.active);
    if (a.load > cap * (1.0 + 1e-6) + kTol) {
      return evaluate(*fleet_, alloc, input, weights);
    }
  }
  double served = 0.0;
  for (std::size_t g = 0; g < groups; ++g) served += alloc[g].load;
  if (std::abs(served - input.lambda) >
      1e-6 * std::max(1.0, input.lambda) + 1e-6) {
    return evaluate(*fleet_, alloc, input, weights);  // sets the reason
  }
  double it = 0.0;
  double delay_jobs = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const auto& a = alloc[g];
    if (a.active == 0.0) {
      if (a.load > 0.0) return evaluate(*fleet_, alloc, input, weights);
      continue;  // contributes exact 0.0 to both sums, like the reference
    }
    const std::size_t slot = level_offset_[g] + a.level;
    const double rate = rate_table_[slot];
    const double per = a.load / a.active;
    if (per > rate * (1.0 + 1e-9)) {
      return evaluate(*fleet_, alloc, input, weights);  // reference throws
    }
    // ServerGroup::power_kw / ServerSpec::power_kw, expression preserved.
    it += a.active * (static_table_[g] + dyn_kw_table_[slot] * (per / rate));
    // ServerGroup::delay_cost, expression preserved.
    if (a.load > 0.0) {
      delay_jobs += per >= rate ? std::numeric_limits<double>::infinity()
                                : a.active * per / (rate - per);
    }
  }
  SlotOutcome out;
  const double slot_h = weights.slot_hours;
  const double facility = weights.pue * it;
  const double brown = std::max(0.0, facility - input.onsite_kw) * slot_h;
  const double electricity = brown * input.price;
  out.delay_jobs = delay_jobs;
  const double delay = (weights.beta * delay_jobs) * slot_h;
  const double total = electricity + delay;
  out.it_power_kw = it;
  out.facility_power_kw = facility;
  out.brown_kwh = brown;
  out.electricity_cost = electricity;
  out.delay_cost = delay;
  out.total_cost = total;
  out.objective = weights.V * total + weights.q * brown +
                  weights.power_price * facility * slot_h;
  out.feasible = true;
  return out;
}

SlotOutcome LoadLpContext::outcome_from_classes(const dc::Allocation& alloc,
                                                const SlotInput& input,
                                                const SlotWeights& weights) const {
  // See the declaration comment.  Lanes cover every group in group order
  // (warm policy keeps dead lanes), so the in-order sums below visit groups
  // exactly as outcome_at does; dead and zero-load lanes contribute an exact
  // +0.0, which is bitwise-neutral in these nonnegative accumulations.
  const std::size_t n = cls_group_.size();
  if (n != alloc.size() || weights.gamma <= 0.0 || weights.gamma >= 1.0) {
    return outcome_at(alloc, input, weights);
  }
  constexpr double kTol = 1e-6;
  const double* active = cls_active_.data();
  const double* load = cls_load_.data();
  const double* rate = cls_rate_.data();
  const double* cap = cls_cap_.data();
  const double* stat = cls_stat_.data();
  const double* dyn = cls_dyn_.data();
  double served = 0.0;
  for (std::size_t i = 0; i < n; ++i) served += load[i];
  if (std::abs(served - input.lambda) >
      1e-6 * std::max(1.0, input.lambda) + 1e-6) {
    return evaluate(*fleet_, alloc, input, weights);  // sets the reason
  }
  double it = 0.0;
  double delay_jobs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i] == 0.0) {
      if (load[i] > 0.0) return evaluate(*fleet_, alloc, input, weights);
      continue;  // exact 0.0 contribution, like the reference
    }
    // outcome_at's cap check, same expression shape: cls_cap_ is
    // gamma * rate, so (gamma * rate) * active reproduces its product order.
    if (load[i] > cap[i] * active[i] * (1.0 + 1e-6) + kTol) {
      return evaluate(*fleet_, alloc, input, weights);
    }
    const double per = load[i] / active[i];
    if (per > rate[i] * (1.0 + 1e-9)) {
      return evaluate(*fleet_, alloc, input, weights);  // reference throws
    }
    it += active[i] * (stat[i] + dyn[i] * (per / rate[i]));
    if (load[i] > 0.0) {
      delay_jobs += per >= rate[i] ? std::numeric_limits<double>::infinity()
                                   : active[i] * per / (rate[i] - per);
    }
  }
  SlotOutcome out;
  const double slot_h = weights.slot_hours;
  const double facility = weights.pue * it;
  const double brown = std::max(0.0, facility - input.onsite_kw) * slot_h;
  const double electricity = brown * input.price;
  out.delay_jobs = delay_jobs;
  const double delay = (weights.beta * delay_jobs) * slot_h;
  const double total = electricity + delay;
  out.it_power_kw = it;
  out.facility_power_kw = facility;
  out.brown_kwh = brown;
  out.electricity_cost = electricity;
  out.delay_cost = delay;
  out.total_cost = total;
  out.objective = weights.V * total + weights.q * brown +
                  weights.power_price * facility * slot_h;
  out.feasible = true;
  return out;
}

double LoadLpContext::facility_kw_at(const dc::Allocation& alloc,
                                     const SlotWeights& weights) const {
  // allocation_facility_kw = pue * it_power_kw; the summation below keeps
  // the reference's group order and the power model's expression shape
  // (active * (static + dyn * (per/rate))), so the product is bit-identical.
  // Any check the power model would reject (or a tolerance sliver where it
  // would throw) defers to the reference, as in outcome_at.
  const std::size_t groups = alloc.size();
  if (groups != fleet_->group_count()) {
    return allocation_facility_kw(*fleet_, alloc, weights.pue);
  }
  double it = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const auto& a = alloc[g];
    if (a.level >= level_offset_[g + 1] - level_offset_[g] ||
        a.active < 0.0 || a.active > server_count_[g] * (1.0 + 1e-9) ||
        a.load < 0.0) {
      return allocation_facility_kw(*fleet_, alloc, weights.pue);
    }
    if (a.active == 0.0) {
      if (a.load > 0.0) {
        return allocation_facility_kw(*fleet_, alloc, weights.pue);
      }
      continue;  // exact 0.0 contribution, like the reference
    }
    const std::size_t slot = level_offset_[g] + a.level;
    const double rate = rate_table_[slot];
    const double per = a.load / a.active;
    if (per > rate * (1.0 + 1e-9)) {
      return allocation_facility_kw(*fleet_, alloc, weights.pue);
    }
    it += a.active * (static_table_[g] + dyn_kw_table_[slot] * (per / rate));
  }
  return weights.pue * it;
}

LoadBalanceResult LoadLpContext::solve_cold(dc::Allocation& alloc,
                                            const SlotInput& input,
                                            const SlotWeights& weights) {
  // Reference-order regime sequence: identical decisions, brackets and
  // tolerances to balance_loads().
  LoadBalanceResult result;
  const double mu_full = weights.brown_price(input.price);

  double nu = solve_linear(alloc, input.lambda, mu_full, weights);
  if (nu < 0.0) {
    result.outcome = outcome_at(alloc, input, weights);
    result.outcome.infeasible_reason = "active capacity below lambda";
    return result;
  }
  // Fused regime check: outcome_at's facility_power_kw carries the exact
  // bits facility_kw_at would produce (same expressions, same order), so one
  // pass serves both the [p - r]^+ branch decision and the returned outcome.
  // A fallback (reference-evaluated, possibly infeasible) outcome recomputes
  // the power the explicit way, preserving the reference decision sequence.
  SlotOutcome out_a = outcome_at(alloc, input, weights);
  const double power_a =
      out_a.feasible ? out_a.facility_power_kw : facility_kw_at(alloc, weights);
  if (power_a >= input.onsite_kw * (1.0 - 1e-9)) {
    result.feasible = true;
    result.regime = PowerRegime::kGridDraw;
    result.nu = nu;
    result.effective_price = mu_full;
    result.outcome = std::move(out_a);
    return result;
  }

  const double mu_floor = weights.power_price;
  nu = solve_linear(alloc, input.lambda, mu_floor, weights);
  SlotOutcome out_b = outcome_at(alloc, input, weights);
  const double power_b =
      out_b.feasible ? out_b.facility_power_kw : facility_kw_at(alloc, weights);
  if (power_b <= input.onsite_kw * (1.0 + 1e-9)) {
    result.feasible = true;
    result.regime = PowerRegime::kRenewable;
    result.nu = nu;
    result.effective_price = mu_floor;
    result.outcome = std::move(out_b);
    return result;
  }

  auto power_gap = [&](double mu) {
    solve_linear(alloc, input.lambda, mu, weights);
    return facility_kw_at(alloc, weights) - input.onsite_kw;
  };
  util::BisectionOptions options;
  options.x_tol = std::max(1e-12, mu_full * 1e-10);
  options.f_tol = 1e-6 * std::max(1.0, input.onsite_kw);
  options.max_iterations = 100;
  const auto boundary = util::bisect(power_gap, mu_floor, mu_full, options);
  nu = solve_linear(alloc, input.lambda, boundary.x, weights);
  result.feasible = true;
  result.regime = PowerRegime::kBoundary;
  result.nu = nu;
  result.effective_price = boundary.x;
  result.outcome = outcome_at(alloc, input, weights);
  return result;
}

LoadBalanceResult LoadLpContext::solve_warm(dc::Allocation& alloc,
                                            const SlotInput& input,
                                            const SlotWeights& weights) {
  // Re-check the cached regime branch first; on success only that branch's
  // linear solve runs (warm-bracketed from the cached nu).  A failed check
  // means the candidate crossed the [p - r]^+ kink: count the flip and fall
  // back to the reference-order cold sequence.
  const double mu_full = weights.brown_price(input.price);
  LoadBalanceResult result;

  if (cached_regime_ == PowerRegime::kGridDraw) {
    for (auto& a : alloc) a.load = 0.0;
    if (input.lambda > kTiny) {
      build_classes(alloc, weights);
      const double nu = solve_linear_built(input.lambda, mu_full, weights,
                                           cached_nu_);
      if (nu < 0.0) {
        result.outcome = outcome_at(alloc, input, weights);
        result.outcome.infeasible_reason = "active capacity below lambda";
        return result;
      }
      scatter_loads(alloc);
      // Fused check-and-outcome, as in the cold sequence.
      SlotOutcome out_a = outcome_from_classes(alloc, input, weights);
      const double power_a = out_a.feasible ? out_a.facility_power_kw
                                            : facility_kw_at(alloc, weights);
      if (power_a >= input.onsite_kw * (1.0 - 1e-9)) {
        result.feasible = true;
        result.regime = PowerRegime::kGridDraw;
        result.nu = nu;
        result.effective_price = mu_full;
        result.outcome = std::move(out_a);
        return result;
      }
      ++stats_.regime_flips;
      return solve_cold(alloc, input, weights);
    }
    return solve_cold(alloc, input, weights);
  }

  if (cached_regime_ == PowerRegime::kRenewable) {
    const double mu_floor = weights.power_price;
    double nu = 0.0;
    for (auto& a : alloc) a.load = 0.0;
    if (input.lambda > kTiny) {
      build_classes(alloc, weights);
      nu = solve_linear_built(input.lambda, mu_floor, weights, cached_nu_);
      if (nu >= 0.0) scatter_loads(alloc);
    }
    if (nu >= 0.0) {
      SlotOutcome out_b = outcome_from_classes(alloc, input, weights);
      const double power_b = out_b.feasible ? out_b.facility_power_kw
                                            : facility_kw_at(alloc, weights);
      if (power_b <= input.onsite_kw * (1.0 + 1e-9)) {
        result.feasible = true;
        result.regime = PowerRegime::kRenewable;
        result.nu = nu;
        result.effective_price = mu_floor;
        result.outcome = std::move(out_b);
        return result;
      }
    }
    ++stats_.regime_flips;
    return solve_cold(alloc, input, weights);
  }

  // kBoundary: warm the outer mu bisection around the cached effective
  // price.  Facility power is nonincreasing in mu, so the gap (power -
  // onsite) must be >= 0 at the lower end and <= 0 at the upper end for the
  // pin to stay inside the warm window.
  const double mu_floor = weights.power_price;
  double wlo = std::max(mu_floor, cached_mu_ * 0.5);
  double whi = std::min(mu_full, cached_mu_ * 2.0);
  // Each inner clearing warms from the previous one's nu — nu(mu) is
  // continuous, so consecutive outer iterates share tight brackets.
  double last_nu = cached_nu_;
  auto warm_linear = [&](double mu) {
    for (auto& a : alloc) a.load = 0.0;
    if (input.lambda <= kTiny) return 0.0;
    build_classes(alloc, weights);
    const double nu =
        solve_linear_built(input.lambda, mu, weights, last_nu);
    if (nu >= 0.0) {
      last_nu = nu;
      scatter_loads(alloc);
    }
    return nu;
  };
  auto power_gap = [&](double mu) {
    warm_linear(mu);
    return facility_kw_at(alloc, weights) - input.onsite_kw;
  };
  if (!(wlo < whi) || warm_linear(mu_full) < 0.0) {
    // Degenerate window or infeasible capacity: reference order handles it.
    return solve_cold(alloc, input, weights);
  }
  if (facility_kw_at(alloc, weights) >=
      input.onsite_kw * (1.0 - 1e-9)) {
    // The full-price solution now draws grid power: regime flipped to A.
    ++stats_.regime_flips;
    return solve_cold(alloc, input, weights);
  }
  if (power_gap(wlo) < 0.0 || power_gap(whi) > 0.0) {
    // The pin left the warm window (possibly all the way to regime B).
    ++stats_.regime_flips;
    return solve_cold(alloc, input, weights);
  }
  util::BisectionOptions options;
  options.x_tol = std::max(1e-12, mu_full * 1e-10);
  options.f_tol = 1e-6 * std::max(1.0, input.onsite_kw);
  options.max_iterations = 100;
  const auto boundary = util::bisect(power_gap, wlo, whi, options);
  const double nu = warm_linear(boundary.x);
  result.feasible = true;
  result.regime = PowerRegime::kBoundary;
  result.nu = nu;
  result.effective_price = boundary.x;
  result.outcome = outcome_from_classes(alloc, input, weights);
  return result;
}

bool LoadLpContext::cache_valid_for(const SlotInput& input,
                                    const SlotWeights& weights) const {
  return cache_valid_ && cached_input_.lambda == input.lambda &&
         cached_input_.onsite_kw == input.onsite_kw &&
         cached_input_.price == input.price && cached_weights_.V == weights.V &&
         cached_weights_.q == weights.q &&
         cached_weights_.beta == weights.beta &&
         cached_weights_.gamma == weights.gamma &&
         cached_weights_.pue == weights.pue &&
         cached_weights_.slot_hours == weights.slot_hours &&
         cached_weights_.power_price == weights.power_price;
}

void LoadLpContext::remember(const dc::Allocation& alloc,
                             const SlotInput& input, const SlotWeights& weights,
                             const LoadBalanceResult& result) {
  (void)alloc;
  const bool had_point = cache_valid_ && cached_feasible_;
  cache_valid_ = true;
  cached_input_ = input;
  cached_weights_ = weights;
  // An infeasible solve carries no dual information — keep the slot's last
  // feasible (nu, mu, regime) point so the next feasible candidate still
  // warms from it instead of falling back to the canonical bracket.
  if (result.feasible || !had_point) {
    cached_nu_ = result.nu;
    cached_mu_ = result.effective_price;
    cached_regime_ = result.regime;
    cached_feasible_ = result.feasible;
  }
}

void LoadLpContext::memo_clear() {
  if (memo_used_ == 0) return;
  memo_used_ = 0;  // entries stay pooled for reuse
  std::fill(memo_slots_.begin(), memo_slots_.end(), std::int32_t{-1});
}

std::ptrdiff_t LoadLpContext::memo_find(std::uint64_t hash,
                                        const dc::Allocation& alloc) const {
  const std::size_t stride = 2 * alloc.size();
  std::size_t slot = hash & (kMemoSlots - 1);
  while (true) {
    const std::int32_t idx = memo_slots_[slot];
    if (idx < 0) return -1;
    // Bitwise key compare straight against the allocation: stored keys
    // were written with the same casts, so representation equality is the
    // same predicate memcmp over a materialised key would apply.
    // All entries share one stride (the memo only ever sees one fleet).
    if (memo_hashes_[static_cast<std::size_t>(idx)] == hash) {
      const double* key = &memo_keys_[static_cast<std::size_t>(idx) * stride];
      bool same = true;
      for (std::size_t g = 0; same && g < alloc.size(); ++g) {
        const double lv = static_cast<double>(alloc[g].level);
        const double ac = alloc[g].active;
        same = std::memcmp(&key[2 * g], &lv, sizeof(double)) == 0 &&
               std::memcmp(&key[2 * g + 1], &ac, sizeof(double)) == 0;
      }
      if (same) return idx;
    }
    slot = (slot + 1) & (kMemoSlots - 1);
  }
}

void LoadLpContext::memo_store(std::uint64_t hash,
                               const LoadBalanceResult& result,
                               const dc::Allocation& alloc) {
  if (memo_used_ >= kMemoCapacity) memo_clear();
  std::size_t slot = hash & (kMemoSlots - 1);
  while (memo_slots_[slot] >= 0) slot = (slot + 1) & (kMemoSlots - 1);
  const std::size_t idx = memo_used_++;
  memo_slots_[slot] = static_cast<std::int32_t>(idx);
  const std::size_t groups = alloc.size();
  const std::size_t stride = 2 * groups;
  if (memo_hashes_.size() <= idx) {  // grow once; cleared entries reuse rows
    memo_hashes_.resize(idx + 1);
    memo_results_.resize(idx + 1);
    memo_keys_.resize((idx + 1) * stride);
    memo_loads_.resize((idx + 1) * groups);
  }
  memo_hashes_[idx] = hash;
  // Write the key straight from the allocation: interleaved (level,
  // active) doubles, the stream memo_find and fnv1a_alloc both walk.
  double* key = &memo_keys_[idx * stride];
  for (std::size_t g = 0; g < groups; ++g) {
    key[2 * g] = static_cast<double>(alloc[g].level);
    key[2 * g + 1] = alloc[g].active;
  }
  memo_results_[idx] = result;
  double* loads = &memo_loads_[idx * groups];
  for (std::size_t g = 0; g < groups; ++g) loads[g] = alloc[g].load;
}

LoadBalanceResult LoadLpContext::solve(dc::Allocation& alloc,
                                       const SlotInput& input,
                                       const SlotWeights& weights) {
  ++stats_.solves;
  const bool warm = cache_valid_for(input, weights);
  const obs::ScopedSpan span(warm ? "load_lp_warm" : "load_lp_cold");
  if (warm) {
    ++stats_.warm;
  } else {
    ++stats_.cold;
    memo_clear();
  }

  // Memo first: a hit returns the stored (bit-exact) result without even
  // rebuilding the class arrays.
  const std::uint64_t hash = fnv1a_alloc(alloc);
  if (warm) {
    const std::ptrdiff_t hit = memo_find(hash, alloc);
    if (hit >= 0) {
      ++stats_.memo_hits;
      const double* loads =
          &memo_loads_[static_cast<std::size_t>(hit) * alloc.size()];
      for (std::size_t g = 0; g < alloc.size(); ++g) {
        alloc[g].load = loads[g];
      }
      return memo_results_[static_cast<std::size_t>(hit)];
    }
  }

  // One class build covers the whole solve: the allocation's levels/active
  // counts are fixed until we return, so the interior build_classes calls
  // (including the boundary regime's per-mu re-clears) short-circuit.
  build_classes(alloc, weights);
  classes_ready_ = true;

  // Capacity pre-check with the exact reference predicate: capacity-short
  // candidates exit through the cold sequence's own (identical) check
  // without touching the warm machinery.
  bool capacity_short = false;
  if (input.lambda > kTiny) {
    capacity_short = built_capacity() < input.lambda * (1.0 - 1e-9);
  }

  const LoadBalanceResult result =
      (warm && !capacity_short && policy_ == LoadLpPolicy::kWarmStart)
          ? solve_warm(alloc, input, weights)
          : solve_cold(alloc, input, weights);
  classes_ready_ = false;
  remember(alloc, input, weights, result);
  memo_store(hash, result, alloc);
  return result;
}

// OBS-EXEMPT(pure delegation; every inner solve opens its own span)
// Each solve() below emits load_lp_warm/load_lp_cold, which is the
// granularity the span profile pins.
void LoadLpContext::solve_batch(std::vector<dc::Allocation>& candidates,
                                const SlotInput& input,
                                const SlotWeights& weights,
                                std::vector<LoadBalanceResult>& results) {
  results.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    results[i] = solve(candidates[i], input, weights);
  }
}

}  // namespace coca::opt
