#include "opt/load_balancer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/solvers.hpp"

namespace coca::opt {
namespace {

constexpr double kTiny = 1e-12;

/// One active (group, level) slice seen by the dual decomposition: rate,
/// facility-referenced dynamic slope, active count.
struct ServerClass {
  std::size_t group = 0;
  double rate = 0.0;    ///< x (req/s per server)
  double slope = 0.0;   ///< pue * p_c(x)/x (kW per req/s)
  double active = 0.0;  ///< n > 0
  double cap_per = 0.0; ///< gamma * x
};

std::vector<ServerClass> active_classes(const dc::Fleet& fleet,
                                        const dc::Allocation& alloc,
                                        const SlotWeights& weights) {
  std::vector<ServerClass> classes;
  classes.reserve(alloc.size());
  for (std::size_t g = 0; g < alloc.size(); ++g) {
    if (alloc[g].active <= kTiny) continue;
    const auto& spec = fleet.group(g).spec();
    ServerClass sc;
    sc.group = g;
    sc.rate = spec.level(alloc[g].level).service_rate;
    sc.slope = weights.pue * spec.dynamic_slope(alloc[g].level);
    sc.active = alloc[g].active;
    sc.cap_per = weights.gamma * sc.rate;
    classes.push_back(sc);
  }
  return classes;
}

/// Per-server best response to workload price nu at effective energy price mu.
double server_response(const ServerClass& sc, double nu, double mu,
                       double v_beta) {
  const double threshold = mu * sc.slope + v_beta / sc.rate;
  if (nu <= threshold) return 0.0;
  const double a = sc.rate - std::sqrt(v_beta * sc.rate / (nu - mu * sc.slope));
  return std::clamp(a, 0.0, sc.cap_per);
}

/// Push loads so they sum exactly to lambda, respecting per-class caps.
/// The pre-existing mismatch is tiny (bisection tolerance), so a couple of
/// proportional passes suffice.
void settle_residual(std::vector<ServerClass>& classes,
                     std::vector<double>& loads, double lambda) {
  for (int pass = 0; pass < 4; ++pass) {
    const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
    double residual = lambda - total;
    if (std::abs(residual) <= 1e-9 * std::max(1.0, lambda)) return;
    if (residual > 0.0) {
      double headroom = 0.0;
      for (std::size_t i = 0; i < classes.size(); ++i) {
        headroom += classes[i].active * classes[i].cap_per - loads[i];
      }
      if (headroom <= kTiny) return;
      for (std::size_t i = 0; i < classes.size(); ++i) {
        const double room = classes[i].active * classes[i].cap_per - loads[i];
        loads[i] += residual * room / headroom;
      }
    } else {
      const double shrink = lambda / std::max(total, kTiny);
      for (auto& load : loads) load *= shrink;
    }
  }
}

/// Greedy fill used when the delay weight vanishes: cheapest energy first.
void greedy_fill(std::vector<ServerClass>& classes, std::vector<double>& loads,
                 double lambda, double mu) {
  std::vector<std::size_t> order(classes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mu * classes[a].slope < mu * classes[b].slope;
  });
  double remaining = lambda;
  for (std::size_t idx : order) {
    const double cap = classes[idx].active * classes[idx].cap_per;
    const double take = std::min(cap, remaining);
    loads[idx] = take;
    remaining -= take;
    if (remaining <= 0.0) break;
  }
}

}  // namespace

double allocation_facility_kw(const dc::Fleet& fleet,
                              const dc::Allocation& alloc, double pue) {
  return pue * dc::it_power_kw(fleet, alloc);
}

double balance_loads_linear(const dc::Fleet& fleet, dc::Allocation& alloc,
                            double lambda, double mu,
                            const SlotWeights& weights) {
  for (auto& a : alloc) a.load = 0.0;
  if (lambda <= kTiny) return 0.0;

  std::vector<ServerClass> classes = active_classes(fleet, alloc, weights);
  double capacity = 0.0;
  for (const auto& sc : classes) capacity += sc.active * sc.cap_per;
  if (capacity < lambda * (1.0 - 1e-9)) return -1.0;

  std::vector<double> loads(classes.size(), 0.0);
  const double v_beta = weights.V * weights.beta;
  double nu = 0.0;
  if (v_beta <= kTiny) {
    greedy_fill(classes, loads, lambda, mu);
  } else {
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (const auto& sc : classes) {
      lo = std::min(lo, mu * sc.slope + v_beta / sc.rate);
      const double full = mu * sc.slope +
                          v_beta / (sc.rate * (1.0 - weights.gamma) *
                                    (1.0 - weights.gamma));
      hi = std::max(hi, full);
    }
    hi = hi * (1.0 + 1e-9) + kTiny;
    auto supply_gap = [&](double price) {
      double total = 0.0;
      for (const auto& sc : classes) {
        total += sc.active * server_response(sc, price, mu, v_beta);
      }
      return total - lambda;
    };
    util::BisectionOptions options;
    options.x_tol = std::max(1e-14, (hi - lo) * 1e-13);
    options.f_tol = 1e-9 * std::max(1.0, lambda);
    options.max_iterations = 200;
    const auto result = util::bisect(supply_gap, lo, hi, options);
    nu = result.x;
    for (std::size_t i = 0; i < classes.size(); ++i) {
      loads[i] = classes[i].active * server_response(classes[i], nu, mu, v_beta);
    }
  }
  settle_residual(classes, loads, lambda);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    alloc[classes[i].group].load = loads[i];
  }
  return nu;
}

LoadBalanceResult balance_loads(const dc::Fleet& fleet, dc::Allocation& alloc,
                                const SlotInput& input,
                                const SlotWeights& weights) {
  LoadBalanceResult result;
  const double mu_full = weights.brown_price(input.price);

  // Regime A: assume the optimum draws grid power (p >= r).
  double nu = balance_loads_linear(fleet, alloc, input.lambda, mu_full, weights);
  if (nu < 0.0) {
    result.outcome = evaluate(fleet, alloc, input, weights);
    result.outcome.infeasible_reason = "active capacity below lambda";
    return result;
  }
  const double power_a = allocation_facility_kw(fleet, alloc, weights.pue);
  if (power_a >= input.onsite_kw * (1.0 - 1e-9)) {
    result.feasible = true;
    result.regime = PowerRegime::kGridDraw;
    result.nu = nu;
    result.effective_price = mu_full;
    result.outcome = evaluate(fleet, alloc, input, weights);
    return result;
  }

  // Regime B: electricity free below r; only the facility-power price (the
  // peak-power extension's multiplier; 0 in the base model) and the delay
  // cost remain.
  const double mu_floor = weights.power_price;
  nu = balance_loads_linear(fleet, alloc, input.lambda, mu_floor, weights);
  const double power_b = allocation_facility_kw(fleet, alloc, weights.pue);
  if (power_b <= input.onsite_kw * (1.0 + 1e-9)) {
    result.feasible = true;
    result.regime = PowerRegime::kRenewable;
    result.nu = nu;
    result.effective_price = mu_floor;
    result.outcome = evaluate(fleet, alloc, input, weights);
    return result;
  }

  // Boundary: the optimum sits at p == r; find the effective price mu in
  // (mu_floor, mu_full) whose linear solution hits the on-site supply exactly.
  auto power_gap = [&](double mu) {
    balance_loads_linear(fleet, alloc, input.lambda, mu, weights);
    return allocation_facility_kw(fleet, alloc, weights.pue) - input.onsite_kw;
  };
  util::BisectionOptions options;
  options.x_tol = std::max(1e-12, mu_full * 1e-10);
  options.f_tol = 1e-6 * std::max(1.0, input.onsite_kw);
  options.max_iterations = 100;
  const auto boundary = util::bisect(power_gap, mu_floor, mu_full, options);
  nu = balance_loads_linear(fleet, alloc, input.lambda, boundary.x, weights);
  result.feasible = true;
  result.regime = PowerRegime::kBoundary;
  result.nu = nu;
  result.effective_price = boundary.x;
  result.outcome = evaluate(fleet, alloc, input, weights);
  return result;
}

}  // namespace coca::opt
