#include "opt/distributed_lb.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace coca::opt {
namespace {

/// A server group's local state: everything it needs to answer a price
/// broadcast autonomously (its own spec and active count — no global
/// knowledge).
struct LocalAgent {
  std::size_t group = 0;
  double rate = 0.0;
  double slope = 0.0;   ///< facility-referenced dynamic slope
  double active = 0.0;
  double cap_per = 0.0;

  /// The per-server best response of Appendix A's dual decomposition.
  double respond(double nu, double mu, double v_beta) const {
    const double threshold = mu * slope + v_beta / rate;
    if (nu <= threshold) return 0.0;
    const double a = rate - std::sqrt(v_beta * rate / (nu - mu * slope));
    return std::clamp(a, 0.0, cap_per);
  }
};

}  // namespace

DistributedLbResult distribute_loads_message_passing(
    const dc::Fleet& fleet, dc::Allocation& alloc, double lambda, double mu,
    const SlotWeights& weights, const DistributedLbConfig& config) {
  DistributedLbResult result;
  for (auto& a : alloc) a.load = 0.0;
  if (lambda <= 0.0) {
    result.converged = true;
    return result;
  }

  // Each active group instantiates its local agent.
  std::vector<LocalAgent> agents;
  double capacity = 0.0;
  for (std::size_t g = 0; g < alloc.size(); ++g) {
    if (alloc[g].active <= 0.0) continue;
    const auto& spec = fleet.group(g).spec();
    LocalAgent agent;
    agent.group = g;
    agent.rate = spec.level(alloc[g].level).service_rate;
    agent.slope = weights.pue * spec.dynamic_slope(alloc[g].level);
    agent.active = alloc[g].active;
    agent.cap_per = weights.gamma * agent.rate;
    capacity += agent.active * agent.cap_per;
    agents.push_back(agent);
  }
  if (capacity < lambda * (1.0 - 1e-9)) return result;  // not converged

  const double v_beta = weights.V * weights.beta;
  // Price bracket maintained by the coordinator: it only ever sees the
  // aggregate supply, never the agents' internals.
  double lo = 0.0;
  double hi = 0.0;
  for (const auto& agent : agents) {
    hi = std::max(hi, mu * agent.slope +
                          v_beta / (agent.rate * (1.0 - weights.gamma) *
                                    (1.0 - weights.gamma)));
  }
  hi = hi * (1.0 + 1e-9) + 1e-12;

  double nu = 0.5 * (lo + hi);
  std::vector<double> replies(agents.size(), 0.0);
  for (int round = 0; round < config.max_rounds; ++round) {
    ++result.rounds;
    // Broadcast nu; collect one reply per agent.
    double supply = 0.0;
    for (std::size_t i = 0; i < agents.size(); ++i) {
      replies[i] = agents[i].active * agents[i].respond(nu, mu, v_beta);
      supply += replies[i];
      ++result.messages;
    }
    result.supply_gap = std::abs(supply - lambda);
    if (result.supply_gap <= config.rel_tolerance * lambda) {
      result.converged = true;
      break;
    }
    if (supply > lambda) {
      hi = nu;
    } else {
      lo = nu;
    }
    nu = 0.5 * (lo + hi);
  }
  result.nu = nu;

  // Commit the final responses; distribute any residual over remaining
  // headroom so constraint (8) holds exactly.
  double total = 0.0;
  for (std::size_t i = 0; i < agents.size(); ++i) {
    alloc[agents[i].group].load = replies[i];
    total += replies[i];
  }
  double residual = lambda - total;
  if (std::abs(residual) > 0.0) {
    if (residual > 0.0) {
      double headroom = 0.0;
      for (const auto& agent : agents) {
        headroom += agent.active * agent.cap_per;
      }
      headroom -= total;
      if (headroom > 0.0) {
        for (const auto& agent : agents) {
          const double room =
              agent.active * agent.cap_per - alloc[agent.group].load;
          alloc[agent.group].load += residual * room / headroom;
        }
      }
    } else if (total > 0.0) {
      const double shrink = lambda / total;
      for (const auto& agent : agents) alloc[agent.group].load *= shrink;
    }
  }
  return result;
}

}  // namespace coca::opt
