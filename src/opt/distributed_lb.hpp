#pragma once
// Message-passing distributed load distribution — the dual-decomposition
// protocol the paper invokes (Sec. 4.2 line 3, Appendix A: "the optimal load
// distribution can be easily derived in a distributed manner (e.g., by using
// dual decomposition [27])") implemented as servers would actually run it.
//
// Protocol per round:
//   1. the coordinator broadcasts the current workload price nu        (1 msg)
//   2. every active server group replies with its autonomous best-response
//      load  a_g(nu) = clamp(x - sqrt(V*beta*x/(nu - mu*c)), 0, gamma*x)
//      computed from purely local information                    (G messages)
//   3. the coordinator updates nu toward market clearing (sum = lambda)
//      by maintaining a shrinking price bracket.
//
// The centralized balance_loads_linear computes the same fixed point in one
// shot; this module exists to (a) demonstrate the distributed realization,
// (b) count the communication it costs, and (c) let tests verify both agree.

#include "opt/load_balancer.hpp"

namespace coca::opt {

struct DistributedLbConfig {
  int max_rounds = 200;
  /// Stop when the supply mismatch falls below this fraction of lambda.
  double rel_tolerance = 1e-6;
};

struct DistributedLbResult {
  bool converged = false;
  int rounds = 0;
  int messages = 0;   ///< total server->coordinator replies
  double nu = 0.0;    ///< final broadcast price
  double supply_gap = 0.0;  ///< |sum loads - lambda| at termination
};

/// Run the protocol for a fixed effective energy price mu (the linear
/// subproblem; the caller owns the [p-r]^+ regime logic exactly as in
/// balance_loads).  Writes the final loads into `alloc`.
DistributedLbResult distribute_loads_message_passing(
    const dc::Fleet& fleet, dc::Allocation& alloc, double lambda, double mu,
    const SlotWeights& weights, const DistributedLbConfig& config = {});

}  // namespace coca::opt
