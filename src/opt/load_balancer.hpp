#pragma once
// Optimal load distribution for a *fixed* capacity configuration — the convex
// inner problem of P3, solved by dual decomposition exactly as the paper
// prescribes (Sec. 4.2 line 3 / Appendix A: "the optimal load distribution
// can be easily derived in a distributed manner, e.g., by dual
// decomposition").
//
// With speeds and active counts fixed, facility power is affine in the group
// loads and the delay cost is convex, so strong duality holds.  Each server's
// best response to a broadcast workload price nu has the closed form
//     a(nu) = clamp( x - sqrt(V*beta*x / (nu - mu*c)), 0, gamma*x ),
// where mu is the effective brown-energy price and c the server's dynamic
// power slope; a scalar bisection on nu clears the market (sum of loads =
// lambda).  The [p - r]^+ kink is handled by the standard two-regime method:
// full price if the optimum draws grid power, zero price if on-site
// renewables cover everything, otherwise an outer bisection pins the optimum
// to the p = r boundary.

#include "opt/slot_problem.hpp"

namespace coca::opt {

/// Which branch of the [p - r]^+ kink the optimum landed on.
enum class PowerRegime {
  kGridDraw,   ///< p >= r: full effective price V*w + q
  kRenewable,  ///< p <= r at the delay-minimizing loads: electricity free
  kBoundary,   ///< optimum pinned at p == r
};

struct LoadBalanceResult {
  bool feasible = false;
  PowerRegime regime = PowerRegime::kGridDraw;
  double nu = 0.0;               ///< clearing workload price
  double effective_price = 0.0;  ///< mu actually used ($/kWh-weighted)
  SlotOutcome outcome;           ///< full cost breakdown at the solution
};

/// Distribute `input.lambda` optimally across the active servers of `alloc`
/// (levels and active counts are read, loads are overwritten).  Handles the
/// renewable kink.  Infeasible (capacity < lambda) results leave loads zero.
LoadBalanceResult balance_loads(const dc::Fleet& fleet, dc::Allocation& alloc,
                                const SlotInput& input,
                                const SlotWeights& weights);

/// Linearized variant used by provisioning sweeps: charges brown energy at
/// the *given* effective price `mu` for every kWh (no kink).  Writes loads;
/// returns the clearing price nu, or a negative value if infeasible.
double balance_loads_linear(const dc::Fleet& fleet, dc::Allocation& alloc,
                            double lambda, double mu,
                            const SlotWeights& weights);

/// Facility power (kW) of an allocation under the weights' PUE.  Convenience
/// for regime checks.
double allocation_facility_kw(const dc::Fleet& fleet,
                              const dc::Allocation& alloc, double pue);

}  // namespace coca::opt
