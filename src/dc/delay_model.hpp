#pragma once
// Delay-cost model (Eq. 4): each server is an M/G/1/PS queue; the delay cost
// of a server is its average response time multiplied by its arrival rate,
// which by Little's law equals the mean number of jobs in the system:
//     d_i(lambda, x) = lambda / (x - lambda).
// The fleet delay cost is the sum over servers.  The utilization cap
// gamma < 1 (constraint 7) keeps every term finite.

#include "dc/power_model.hpp"
#include "util/units.hpp"

namespace coca::dc {

/// Mean response time of an M/G/1/PS queue with service rate `rate` (jobs/s)
/// and arrival rate `lambda` (seconds).  Requires lambda < rate.
double mg1ps_mean_response_seconds(double lambda, double rate);

/// Mean number of jobs in the system: lambda / (rate - lambda); +inf at or
/// beyond saturation.
double mg1ps_jobs_in_system(double lambda, double rate);

/// Total fleet delay cost d (Eq. 4): sum over groups of
/// active * a/(x - a) with per-server load a.  +inf if any server saturated.
double total_delay_jobs(const Fleet& fleet, const Allocation& alloc);

/// Load-weighted mean response time across the fleet (seconds); 0 when idle.
double fleet_mean_response_seconds(const Fleet& fleet, const Allocation& alloc);

/// Same, lifted into the typed time axis (units::seconds stores hours, so the
/// result composes with slot durations and $/h delay-cost rates).
units::Hours fleet_mean_response(const Fleet& fleet, const Allocation& alloc);

}  // namespace coca::dc
