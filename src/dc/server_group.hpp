#pragma once
// A group of homogeneous servers managed in batch.
//
// The paper reduces GSD's complexity by "making capacity provisioning
// decisions on a group basis: changing speed selections for a whole group of
// (homogeneous) servers in batch" (Sec. 4.2).  A group therefore carries one
// ServerSpec and a server count; a provisioning decision for the group is a
// speed level plus the number of active servers, and by symmetry every active
// server in a group receives the same load.

#include <cstddef>

#include "dc/server_spec.hpp"

namespace coca::dc {

class ServerGroup {
 public:
  ServerGroup(ServerSpec spec, std::size_t server_count);

  const ServerSpec& spec() const { return spec_; }
  std::size_t server_count() const { return count_; }

  /// Peak service capacity of the whole group (req/s, all at top speed).
  double max_capacity() const;
  /// Peak power of the whole group (kW).
  double peak_power_kw() const;

  /// Group power (kW) with `active` servers at level k, total group load
  /// `group_lambda` spread equally (Eq. 1 summed; active may be fractional
  /// during relaxed optimization).
  double power_kw(std::size_t k, double active, double group_lambda) const;

  /// Group delay cost (Eq. 4 summed): active * a/(x - a) with a the
  /// per-server load.  Requires a < x (enforced upstream via the utilization
  /// cap gamma < 1); returns +inf if a >= x to keep optimizers safe.
  double delay_cost(std::size_t k, double active, double group_lambda) const;

 private:
  ServerSpec spec_;
  std::size_t count_;
};

}  // namespace coca::dc
