#include "dc/switching.hpp"

#include <cmath>
#include <stdexcept>

namespace coca::dc {

double toggles_between(const Allocation& previous, const Allocation& next) {
  if (previous.size() != next.size()) {
    throw std::invalid_argument("toggles_between: allocation size mismatch");
  }
  double toggles = 0.0;
  for (std::size_t g = 0; g < next.size(); ++g) {
    toggles += std::abs(next[g].active - previous[g].active);
  }
  return toggles;
}

double switching_energy_kwh(const SwitchingModel& model,
                            const Allocation& previous, const Allocation& next) {
  if (model.kwh_per_toggle < 0.0) {
    throw std::invalid_argument("switching_energy_kwh: negative per-toggle cost");
  }
  return model.kwh_per_toggle * toggles_between(previous, next);
}

}  // namespace coca::dc
