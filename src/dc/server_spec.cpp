#include "dc/server_spec.hpp"

#include <algorithm>
#include <stdexcept>

namespace coca::dc {

ServerSpec::ServerSpec(std::string model, double static_power_kw,
                       std::vector<SpeedLevel> levels)
    : model_(std::move(model)),
      static_power_kw_(static_power_kw),
      levels_(std::move(levels)) {
  if (static_power_kw_ < 0.0) {
    throw std::invalid_argument("ServerSpec: negative static power");
  }
  if (levels_.empty()) {
    throw std::invalid_argument("ServerSpec: need at least one speed level");
  }
  for (const auto& lv : levels_) {
    if (lv.service_rate <= 0.0 || lv.dynamic_power_kw < 0.0) {
      throw std::invalid_argument("ServerSpec: invalid level for " + model_);
    }
  }
  if (!std::is_sorted(levels_.begin(), levels_.end(),
                      [](const SpeedLevel& a, const SpeedLevel& b) {
                        return a.service_rate < b.service_rate;
                      })) {
    throw std::invalid_argument("ServerSpec: levels must ascend by service rate");
  }
}

double ServerSpec::peak_power_kw() const {
  return static_power_kw_ + levels_.back().dynamic_power_kw;
}

double ServerSpec::power_kw(std::size_t k, double lambda) const {
  const SpeedLevel& lv = levels_.at(k);
  if (lambda < 0.0 || lambda > lv.service_rate * (1.0 + 1e-9)) {
    throw std::domain_error("ServerSpec::power_kw: lambda outside [0, x]");
  }
  return static_power_kw_ + lv.dynamic_power_kw * (lambda / lv.service_rate);
}

double ServerSpec::dynamic_slope(std::size_t k) const {
  const SpeedLevel& lv = levels_.at(k);
  return lv.dynamic_power_kw / lv.service_rate;
}

ServerSpec ServerSpec::scaled(std::string model, double speed_factor,
                              double power_factor) const {
  if (speed_factor <= 0.0 || power_factor <= 0.0) {
    throw std::invalid_argument("ServerSpec::scaled: factors must be positive");
  }
  std::vector<SpeedLevel> levels = levels_;
  for (auto& lv : levels) {
    lv.frequency_ghz *= speed_factor;
    lv.service_rate *= speed_factor;
    lv.dynamic_power_kw *= power_factor;
  }
  return ServerSpec(std::move(model), static_power_kw_ * power_factor,
                    std::move(levels));
}

ServerSpec ServerSpec::opteron2380() {
  // Powerpack measurements reported in Sec. 5.1.  Total power at full load
  // per level is 184/194/208/231 W; dynamic power is total minus the 140 W
  // idle.  10 req/s at 2.5 GHz, service rate proportional to frequency.
  const double rate_per_ghz = 10.0 / 2.5;
  return ServerSpec(
      "AMD Opteron 2380", 0.140,
      {
          {0.8, 0.8 * rate_per_ghz, 0.044},
          {1.3, 1.3 * rate_per_ghz, 0.054},
          {1.8, 1.8 * rate_per_ghz, 0.068},
          {2.5, 2.5 * rate_per_ghz, 0.091},
      });
}

}  // namespace coca::dc
