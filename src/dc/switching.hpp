#pragma once
// Server on/off switching-cost model (Sec. 5.2.4, Fig. 5(d)).
//
// Following the paper (and [19]), switching costs — energy and time waste
// plus wear-and-tear from toggling servers — are folded into a single
// per-toggle cost quantified as *energy* (kWh) and normalized against the
// maximum hourly energy of one server (0.231 kWh for the reference spec).
// Each unit change in a group's active-server count counts as one toggle.

#include "dc/power_model.hpp"

namespace coca::dc {

struct SwitchingModel {
  /// Energy charged per server toggled on or off (kWh).  The paper sweeps
  /// 0-10% of 0.231 kWh.
  double kwh_per_toggle = 0.0;
};

/// Number of toggles between consecutive allocations: sum over groups of
/// |active(t) - active(t-1)|.  A group that changes speed level with the same
/// active count is *not* charged (DVFS transitions are cheap; only on/off
/// cycles wear hardware).
double toggles_between(const Allocation& previous, const Allocation& next);

/// Switching energy (kWh) between consecutive allocations.
double switching_energy_kwh(const SwitchingModel& model,
                            const Allocation& previous, const Allocation& next);

}  // namespace coca::dc
