#include "dc/power_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace coca::dc {

double total_load(const Allocation& alloc) {
  double sum = 0.0;
  for (const auto& a : alloc) sum += a.load;
  return sum;
}

double total_active_servers(const Allocation& alloc) {
  double sum = 0.0;
  for (const auto& a : alloc) sum += a.active;
  return sum;
}

double it_power_kw(const Fleet& fleet, const Allocation& alloc) {
  if (alloc.size() != fleet.group_count()) {
    throw std::invalid_argument("it_power_kw: allocation size mismatch");
  }
  double power = 0.0;
  for (std::size_t g = 0; g < alloc.size(); ++g) {
    power += fleet.group(g).power_kw(alloc[g].level, alloc[g].active,
                                     alloc[g].load);
  }
  return power;
}

double facility_power_kw(const Fleet& fleet, const Allocation& alloc,
                         double pue) {
  if (pue < 1.0) throw std::invalid_argument("facility_power_kw: PUE < 1");
  return pue * it_power_kw(fleet, alloc);
}

double brown_power_kw(double facility_kw, double onsite_kw) {
  return std::max(0.0, facility_kw - onsite_kw);
}

double electricity_cost(double price_per_kwh, double facility_kw,
                        double onsite_kw, double slot_hours) {
  return electricity_cost(units::UsdPerKwh{price_per_kwh},
                          units::KiloWatts{facility_kw},
                          units::KiloWatts{onsite_kw},
                          units::Hours{slot_hours})
      .value();  // UNITS: documented raw-double delegate
}

units::KiloWatts it_power(const Fleet& fleet, const Allocation& alloc) {
  return units::KiloWatts{it_power_kw(fleet, alloc)};
}

units::KiloWatts facility_power(const Fleet& fleet, const Allocation& alloc,
                                double pue) {
  return units::KiloWatts{facility_power_kw(fleet, alloc, pue)};
}

units::Usd electricity_cost(units::UsdPerKwh price, units::KiloWatts facility,
                            units::KiloWatts onsite, units::Hours slot) {
  if (price.value() < 0.0 || slot.value() <= 0.0) {  // UNITS: sign check
    throw std::invalid_argument("electricity_cost: bad price/slot length");
  }
  // Eq. 3: kW * h -> kWh, then kWh * $/kWh -> $ — checked by the type system.
  return brown_power(facility, onsite) * slot * price;
}

bool allocation_feasible(const Fleet& fleet, const Allocation& alloc,
                         double gamma, std::string* why) {
  auto fail = [&](const std::string& reason) {
    if (why) *why = reason;
    return false;
  };
  if (alloc.size() != fleet.group_count()) return fail("group count mismatch");
  if (gamma <= 0.0 || gamma >= 1.0) return fail("gamma outside (0, 1)");
  constexpr double kTol = 1e-6;
  for (std::size_t g = 0; g < alloc.size(); ++g) {
    const auto& a = alloc[g];
    const auto& group = fleet.group(g);
    if (a.level >= group.spec().level_count()) {
      return fail("group " + std::to_string(g) + ": bad level");
    }
    if (a.active < -kTol ||
        a.active > static_cast<double>(group.server_count()) * (1.0 + kTol)) {
      return fail("group " + std::to_string(g) + ": active outside [0, count]");
    }
    if (a.load < -kTol) {
      return fail("group " + std::to_string(g) + ": negative load");
    }
    const double rate = group.spec().level(a.level).service_rate;
    const double cap = gamma * rate * std::max(0.0, a.active);
    if (a.load > cap * (1.0 + 1e-6) + kTol) {
      std::ostringstream msg;
      msg << "group " << g << ": load " << a.load
          << " exceeds gamma-capped capacity " << cap;
      return fail(msg.str());
    }
  }
  if (why) why->clear();
  return true;
}

double capped_capacity(const Fleet& fleet, const Allocation& alloc,
                       double gamma) {
  if (alloc.size() != fleet.group_count()) {
    throw std::invalid_argument("capped_capacity: allocation size mismatch");
  }
  double cap = 0.0;
  for (std::size_t g = 0; g < alloc.size(); ++g) {
    const double rate = fleet.group(g).spec().level(alloc[g].level).service_rate;
    cap += gamma * rate * alloc[g].active;
  }
  return cap;
}

}  // namespace coca::dc
