#pragma once
// Fleet-level power/electricity model (Eqs. 1-3) and the allocation type
// shared by the whole optimization stack.
//
// An Allocation is the joint capacity-provisioning + load-distribution
// decision at one time slot: for every group, the chosen speed level, the
// number of active servers (fractional during relaxed optimization, integral
// after rounding) and the total group load.  Servers within a group share
// load equally (symmetry of Eq. 4 under a common speed).

#include <cstddef>
#include <string>
#include <vector>

#include "dc/fleet.hpp"
#include "util/units.hpp"

namespace coca::dc {

struct GroupAllocation {
  std::size_t level = 0;  ///< index into the group's ServerSpec levels
  double active = 0.0;    ///< servers switched on at that level
  double load = 0.0;      ///< total group arrival rate (req/s)
};

using Allocation = std::vector<GroupAllocation>;

/// Sum of group loads (req/s).
double total_load(const Allocation& alloc);

/// Count of active servers across groups.
double total_active_servers(const Allocation& alloc);

/// IT power of the fleet (kW), Eq. 2.
double it_power_kw(const Fleet& fleet, const Allocation& alloc);

/// Facility power: IT power times the PUE factor (Sec. 2.1, footnote 1).
double facility_power_kw(const Fleet& fleet, const Allocation& alloc, double pue);

/// Brown power drawn from the grid: [p - r]^+ (kW), Eq. 3's bracket.
double brown_power_kw(double facility_kw, double onsite_kw);

/// Electricity cost for one slot ($): w * [p - r]^+ * slot_hours, Eq. 3.
double electricity_cost(double price_per_kwh, double facility_kw,
                        double onsite_kw, double slot_hours);

// Typed layer (see util/units.hpp): the same model with the dimensions in
// the signatures, so a kW-vs-kWh or $-vs-$/kWh mixup fails to compile.  The
// raw-double functions above remain the solver-math escape hatch.

/// Eq. 2 as power.
units::KiloWatts it_power(const Fleet& fleet, const Allocation& alloc);

/// PUE-scaled facility power.
units::KiloWatts facility_power(const Fleet& fleet, const Allocation& alloc,
                                double pue);

/// Eq. 3's bracket [p - r]^+ — both operands must be power.
constexpr units::KiloWatts brown_power(units::KiloWatts facility,
                                       units::KiloWatts onsite) {
  return units::positive_part(facility - onsite);
}

/// Eq. 3 end to end: w * [p - r]^+ * slot -> dollars.  The implementation is
/// the dimension-checked product; the raw overload delegates here.
units::Usd electricity_cost(units::UsdPerKwh price, units::KiloWatts facility,
                            units::KiloWatts onsite, units::Hours slot);

/// Validate an allocation against the fleet and the utilization cap
/// (constraints 7 and 9 plus physical bounds).  Returns true if feasible;
/// otherwise false and, if `why` is non-null, a human-readable reason.
bool allocation_feasible(const Fleet& fleet, const Allocation& alloc,
                         double gamma, std::string* why = nullptr);

/// Serving capacity of an allocation under the utilization cap:
/// sum_g gamma * x_g * active_g (req/s).
double capped_capacity(const Fleet& fleet, const Allocation& alloc, double gamma);

}  // namespace coca::dc
