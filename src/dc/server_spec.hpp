#pragma once
// Server hardware model (Eq. 1 of the paper).
//
// A server supports a finite set of positive processing speeds
// S = {s_1 < ... < s_K} (DVFS states) plus the implicit zero speed (off /
// deep sleep, negligible power).  While on, power is
//     p(lambda, x) = p_s + p_c(x) * lambda / x,
// i.e. static power plus computing power scaled by utilization.  Speeds are
// service rates in requests/second; power in kW.
//
// The paper's measured reference platform (Powerpack, quad-core AMD Opteron
// 2380) is provided as ServerSpec::opteron2380().

#include <cstddef>
#include <string>
#include <vector>

namespace coca::dc {

/// One positive DVFS operating point.
struct SpeedLevel {
  double frequency_ghz = 0.0;    ///< nominal clock, informational
  double service_rate = 0.0;     ///< x: requests/second at this speed
  double dynamic_power_kw = 0.0; ///< p_c(x): computing power at 100% utilization
};

class ServerSpec {
 public:
  ServerSpec(std::string model, double static_power_kw,
             std::vector<SpeedLevel> levels);

  const std::string& model() const { return model_; }
  /// p_s: power while on, independent of load (kW).
  double static_power_kw() const { return static_power_kw_; }
  /// Number of positive speed levels K (the zero speed is implicit).
  std::size_t level_count() const { return levels_.size(); }
  const SpeedLevel& level(std::size_t k) const { return levels_.at(k); }
  const std::vector<SpeedLevel>& levels() const { return levels_; }
  /// Fastest service rate (requests/second).
  double max_rate() const { return levels_.back().service_rate; }
  /// Peak power: static + dynamic at the fastest level (kW).
  double peak_power_kw() const;

  /// Average power (kW) at level k with per-server arrival rate `lambda`
  /// (Eq. 1; requires 0 <= lambda <= service rate).
  double power_kw(std::size_t k, double lambda) const;
  /// Dynamic-power slope p_c(x)/x at level k (kW per req/s).
  double dynamic_slope(std::size_t k) const;

  /// Derived spec for another hardware generation: service rates scaled by
  /// `speed_factor`, all powers by `power_factor`.
  ServerSpec scaled(std::string model, double speed_factor,
                    double power_factor) const;

  /// The paper's measured server: idle 140 W; speeds 0.8 GHz/184 W,
  /// 1.3/194, 1.8/208, 2.5/231; 10 req/s at full speed (speeds assumed
  /// proportional to frequency).
  static ServerSpec opteron2380();

 private:
  std::string model_;
  double static_power_kw_;
  std::vector<SpeedLevel> levels_;  ///< ascending by service_rate
};

}  // namespace coca::dc
