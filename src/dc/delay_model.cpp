#include "dc/delay_model.hpp"

#include <limits>
#include <stdexcept>

namespace coca::dc {

double mg1ps_mean_response_seconds(double lambda, double rate) {
  if (rate <= 0.0) throw std::domain_error("mg1ps: nonpositive rate");
  if (lambda < 0.0) throw std::domain_error("mg1ps: negative lambda");
  if (lambda >= rate) return std::numeric_limits<double>::infinity();
  return 1.0 / (rate - lambda);
}

double mg1ps_jobs_in_system(double lambda, double rate) {
  if (rate <= 0.0) throw std::domain_error("mg1ps: nonpositive rate");
  if (lambda < 0.0) throw std::domain_error("mg1ps: negative lambda");
  if (lambda >= rate) return std::numeric_limits<double>::infinity();
  return lambda / (rate - lambda);
}

double total_delay_jobs(const Fleet& fleet, const Allocation& alloc) {
  if (alloc.size() != fleet.group_count()) {
    throw std::invalid_argument("total_delay_jobs: allocation size mismatch");
  }
  double total = 0.0;
  for (std::size_t g = 0; g < alloc.size(); ++g) {
    total += fleet.group(g).delay_cost(alloc[g].level, alloc[g].active,
                                       alloc[g].load);
  }
  return total;
}

double fleet_mean_response_seconds(const Fleet& fleet, const Allocation& alloc) {
  const double load = total_load(alloc);
  if (load <= 0.0) return 0.0;
  // Little's law: jobs in system / throughput.
  return total_delay_jobs(fleet, alloc) / load;
}

units::Hours fleet_mean_response(const Fleet& fleet, const Allocation& alloc) {
  return units::seconds(fleet_mean_response_seconds(fleet, alloc));
}

}  // namespace coca::dc
