#pragma once
// The heterogeneous data-center fleet: an ordered collection of server
// groups.  The paper's reference deployment is ~216 K servers (50 MW peak)
// spanning several purchase generations; GSD operates at the granularity of
// 200 groups.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dc/server_group.hpp"
#include "util/units.hpp"

namespace coca::dc {

class Fleet {
 public:
  explicit Fleet(std::vector<ServerGroup> groups);

  std::size_t group_count() const { return groups_.size(); }
  const ServerGroup& group(std::size_t g) const { return groups_.at(g); }
  const std::vector<ServerGroup>& groups() const { return groups_; }

  std::size_t total_servers() const;
  /// Total service capacity at top speeds (req/s).
  double max_capacity() const;
  /// Peak IT power (kW), all servers at top speed and full load.
  double peak_power_kw() const;
  /// Same, through the typed layer (util/units.hpp).
  units::KiloWatts peak_power() const {
    return units::KiloWatts{peak_power_kw()};
  }

 private:
  std::vector<ServerGroup> groups_;
};

struct FleetConfig {
  std::size_t total_servers = 216'000;  ///< paper: ~216 K servers, 50 MW peak
  std::size_t group_count = 200;        ///< paper: GSD run with 200 groups
  std::size_t generations = 4;          ///< hardware heterogeneity
  /// Per-generation speed spread: generation j gets speed factor
  /// 1 - speed_spread * j / (generations - 1).
  double speed_spread = 0.18;
  /// Per-generation power spread (older servers less efficient).
  double power_spread = 0.12;
  std::uint64_t seed = 42;  ///< reserved for randomized variants
};

/// Build the default heterogeneous fleet: `group_count` groups of (nearly)
/// equal size cycling through `generations` scaled variants of the
/// Opteron 2380 reference spec.
Fleet make_default_fleet(const FleetConfig& config = {});

/// Convenience: a small homogeneous fleet for tests/examples.
Fleet make_homogeneous_fleet(std::size_t groups, std::size_t servers_per_group);

/// Failure injection (Sec. 4.2: "In the event of server failures, only
/// functioning servers need to participate ..."): a copy of the fleet with
/// `failed_per_group[g]` servers removed from group g.  Groups are preserved
/// (a fully-failed group keeps zero servers) so allocations and controllers
/// keep their dimensions and can continue mid-run.  Throws if more servers
/// fail than exist.
Fleet degraded_fleet(const Fleet& fleet,
                     const std::vector<std::size_t>& failed_per_group);

}  // namespace coca::dc
