#include "dc/fleet.hpp"

#include <stdexcept>
#include <string>

namespace coca::dc {

Fleet::Fleet(std::vector<ServerGroup> groups) : groups_(std::move(groups)) {
  if (groups_.empty()) throw std::invalid_argument("Fleet: no groups");
}

std::size_t Fleet::total_servers() const {
  std::size_t total = 0;
  for (const auto& g : groups_) total += g.server_count();
  return total;
}

double Fleet::max_capacity() const {
  double total = 0.0;
  for (const auto& g : groups_) total += g.max_capacity();
  return total;
}

double Fleet::peak_power_kw() const {
  double total = 0.0;
  for (const auto& g : groups_) total += g.peak_power_kw();
  return total;
}

Fleet make_default_fleet(const FleetConfig& config) {
  if (config.group_count == 0 || config.total_servers < config.group_count) {
    throw std::invalid_argument("make_default_fleet: bad sizes");
  }
  const std::size_t generations = std::max<std::size_t>(1, config.generations);
  const ServerSpec reference = ServerSpec::opteron2380();

  std::vector<ServerSpec> specs;
  specs.reserve(generations);
  for (std::size_t j = 0; j < generations; ++j) {
    const double frac =
        generations == 1
            ? 0.0
            : static_cast<double>(j) / static_cast<double>(generations - 1);
    // Generation 0 is the newest (reference); older generations are slower
    // and draw relatively more power per unit work.
    const double speed_factor = 1.0 - config.speed_spread * frac;
    const double power_factor = 1.0 + config.power_spread * frac;
    specs.push_back(reference.scaled(
        "gen-" + std::to_string(j), speed_factor, power_factor));
  }

  const std::size_t base = config.total_servers / config.group_count;
  std::size_t remainder = config.total_servers % config.group_count;
  std::vector<ServerGroup> groups;
  groups.reserve(config.group_count);
  for (std::size_t g = 0; g < config.group_count; ++g) {
    std::size_t count = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    groups.emplace_back(specs[g % generations], count);
  }
  return Fleet(std::move(groups));
}

Fleet make_homogeneous_fleet(std::size_t groups, std::size_t servers_per_group) {
  std::vector<ServerGroup> out;
  out.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    out.emplace_back(ServerSpec::opteron2380(), servers_per_group);
  }
  return Fleet(std::move(out));
}

Fleet degraded_fleet(const Fleet& fleet,
                     const std::vector<std::size_t>& failed_per_group) {
  if (failed_per_group.size() != fleet.group_count()) {
    throw std::invalid_argument("degraded_fleet: group count mismatch");
  }
  std::vector<ServerGroup> groups;
  groups.reserve(fleet.group_count());
  for (std::size_t g = 0; g < fleet.group_count(); ++g) {
    const std::size_t have = fleet.group(g).server_count();
    const std::size_t failed = failed_per_group[g];
    if (failed > have) {
      throw std::invalid_argument("degraded_fleet: more failures than servers");
    }
    groups.emplace_back(fleet.group(g).spec(), have - failed);
  }
  return Fleet(std::move(groups));
}

}  // namespace coca::dc
