#include "dc/server_group.hpp"

#include <limits>
#include <stdexcept>

namespace coca::dc {

ServerGroup::ServerGroup(ServerSpec spec, std::size_t server_count)
    : spec_(std::move(spec)), count_(server_count) {
  // A zero-server group is allowed: it models a group whose servers have all
  // failed (failure injection keeps group indices stable).
}

double ServerGroup::max_capacity() const {
  return static_cast<double>(count_) * spec_.max_rate();
}

double ServerGroup::peak_power_kw() const {
  return static_cast<double>(count_) * spec_.peak_power_kw();
}

double ServerGroup::power_kw(std::size_t k, double active,
                             double group_lambda) const {
  if (active < 0.0 || active > static_cast<double>(count_) * (1.0 + 1e-9)) {
    throw std::domain_error("ServerGroup::power_kw: active outside [0, count]");
  }
  if (group_lambda < 0.0) {
    throw std::domain_error("ServerGroup::power_kw: negative load");
  }
  if (active == 0.0) {
    if (group_lambda > 0.0) {
      throw std::domain_error("ServerGroup::power_kw: load with no active servers");
    }
    return 0.0;
  }
  const double per_server = group_lambda / active;
  return active * spec_.power_kw(k, per_server);
}

double ServerGroup::delay_cost(std::size_t k, double active,
                               double group_lambda) const {
  if (group_lambda <= 0.0) return 0.0;
  if (active <= 0.0) return std::numeric_limits<double>::infinity();
  const double rate = spec_.level(k).service_rate;
  const double per_server = group_lambda / active;
  if (per_server >= rate) return std::numeric_limits<double>::infinity();
  return active * per_server / (rate - per_server);
}

}  // namespace coca::dc
